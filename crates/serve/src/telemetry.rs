//! Process-global serving telemetry: the single place every layer of
//! the server reports into, and the single place `/metrics`,
//! `/healthz` summaries, and `/admin/slow` read from.
//!
//! The handles live in one lazily-initialised [`ServeMetrics`] struct
//! so pool workers, the epoll reactor, and the HTTP router all record
//! without threading references through constructors. Recording is the
//! `uadb_telemetry` hot-path budget — relaxed atomics, monotonic clock
//! reads at state-machine transitions the server already makes, no
//! allocation; only genuinely slow paths (a request over the slowness
//! threshold, an operator scrape) take a lock.
//!
//! Metrics are **process**-scoped: two servers in one test process
//! share one registry, so tests assert presence and monotonicity, not
//! exact counts.

use crate::model::{ModelBaseline, ScoreError, Variant};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use uadb_linalg::Matrix;
use uadb_telemetry::{
    now_ns, Counter, DecayStat, FeatureStats, FloatGauge, Gauge, Histogram, HistogramSnapshot,
    Registry, ScoreSketch, SketchSnapshot, SlowRing,
};

/// Stages of a request's life, in order. Each gets its own latency
/// histogram series (`uadb_stage_duration_seconds{stage=...}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First request byte to complete header block.
    HeadRead = 0,
    /// Complete header block to complete body.
    BodyRead = 1,
    /// Routing and request validation (JSON parse, matrix build).
    Parse = 2,
    /// Batch submitted to the pool until the first shard is dequeued.
    QueueWait = 3,
    /// First shard dequeued until the last shard finished.
    Score = 4,
    /// Response serialization.
    Serialize = 5,
    /// Socket write/flush of buffered response bytes.
    WriteFlush = 6,
}

/// Number of [`Stage`] values (array sizing).
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// The `stage` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::HeadRead => "head_read",
            Stage::BodyRead => "body_read",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::Score => "score",
            Stage::Serialize => "serialize",
            Stage::WriteFlush => "write_flush",
        }
    }

    /// All stages, in pipeline order.
    pub fn all() -> [Stage; STAGE_COUNT] {
        [
            Stage::HeadRead,
            Stage::BodyRead,
            Stage::Parse,
            Stage::QueueWait,
            Stage::Score,
            Stage::Serialize,
            Stage::WriteFlush,
        ]
    }
}

/// Why a request or connection was turned away — the `reason` label on
/// `uadb_http_rejected_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// 503: connection budget exhausted at accept time.
    OverBudget = 0,
    /// 400: peer closed mid-request (truncated request).
    EarlyClose = 1,
    /// 408: idle deadline expired mid-request.
    Stalled = 2,
}

impl RejectReason {
    fn name(self) -> &'static str {
        match self {
            RejectReason::OverBudget => "over_budget",
            RejectReason::EarlyClose => "early_close",
            RejectReason::Stalled => "stalled",
        }
    }
}

/// Which variant selection a request asked for (the `variant` label on
/// the per-model counters). Unlike [`Variant`] this includes the paired
/// A/B selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantTag {
    Booster = 0,
    Teacher = 1,
    Both = 2,
}

impl VariantTag {
    pub fn name(self) -> &'static str {
        match self {
            VariantTag::Booster => "booster",
            VariantTag::Teacher => "teacher",
            VariantTag::Both => "both",
        }
    }

    pub fn from_variant(v: Variant) -> Self {
        match v {
            Variant::Booster => VariantTag::Booster,
            Variant::Teacher => VariantTag::Teacher,
        }
    }
}

/// Request/error/row counters for one `(model, variant)` pair.
#[derive(Debug)]
pub struct VariantCounters {
    pub requests: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub rows: Arc<Counter>,
}

/// Per-model counter block: one [`VariantCounters`] per variant tag,
/// plus the model name as a shared `Arc<str>` so hot-path consumers
/// (trace records, slow-ring entries) can carry the name without
/// allocating.
#[derive(Debug)]
pub struct ModelStats {
    pub name: Arc<str>,
    variants: [VariantCounters; 3],
}

impl ModelStats {
    pub fn variant(&self, tag: VariantTag) -> &VariantCounters {
        &self.variants[tag as usize]
    }
}

/// Per-reactor-shard counters, labeled `shard=N`. Each epoll shard
/// caches its own block at construction so the hot accept/event paths
/// touch plain atomic counters, never the registry lock.
#[derive(Debug)]
pub struct ShardStats {
    /// Connections this shard accepted (or received via handoff).
    pub accepted: Arc<Counter>,
    /// Readiness events this shard's `epoll_wait` delivered.
    pub events: Arc<Counter>,
}

/// Row-sampling cap for the per-feature drift accumulators: at most
/// this many rows of a batch feed [`FeatureStats`] (uniform stride, so
/// the mean estimate is unbiased). Score-sketch recording covers every
/// row — it is two relaxed `fetch_add`s — but feature recording costs
/// a CAS pair per feature per row, and the scoring hot path must stay
/// within its bench budget at the 8192-row batch.
const FEATURE_SAMPLE_CAP: usize = 64;

/// The drift gauges for one model name. Registered once per name and
/// kept across model swaps (like the request counters): the *series*
/// is a property of the name, the *window* behind it is not.
#[derive(Debug)]
struct DriftGauges {
    psi: Arc<FloatGauge>,
    feature_max: Arc<FloatGauge>,
    anomaly_live: Arc<FloatGauge>,
    anomaly_train: Arc<FloatGauge>,
}

/// Live drift window for one served model: the score sketch and
/// per-feature accumulators fed from scoring batches, the per-model
/// teacher/booster divergence, and the frozen train-time reference it
/// is all compared against.
///
/// An instance is **immutable in shape** once installed — a model swap
/// (`/admin/reload`, teacher attach/detach) installs a *fresh* one so
/// the new model never inherits the old model's window (in-flight
/// requests may still record into the discarded instance; those rows
/// vanish with it, which is exactly the reset semantics).
#[derive(Debug)]
pub struct ModelDrift {
    name: Arc<str>,
    live: ScoreSketch,
    features: FeatureStats,
    divergence: DecayStat,
    baseline: Option<ModelBaseline>,
    train_means: Vec<f64>,
    train_stds: Vec<f64>,
    window_start_ns: u64,
}

/// Everything the drift scorer derives from one model's window — feeds
/// both the gauge refresh and the `/admin/drift` JSON.
#[derive(Debug, Clone)]
pub struct DriftReport {
    pub name: Arc<str>,
    /// PSI of the live score distribution against the baseline; `None`
    /// when the model has no baseline or the window is empty.
    pub psi: Option<f64>,
    pub live_samples: u64,
    pub baseline_samples: Option<u64>,
    /// Live / train anomaly rate at `threshold` (train `None` without
    /// a baseline).
    pub live_anomaly_rate: f64,
    pub train_anomaly_rate: Option<f64>,
    pub threshold: f64,
    /// Live / baseline score quantiles at p50/p90/p99.
    pub live_quantiles: [f64; 3],
    pub baseline_quantiles: Option<[f64; 3]>,
    /// Per-feature standardized mean shift:
    /// `|live_mean_j − train_mean_j| / train_std_j`.
    pub feature_shifts: Vec<f64>,
    pub live_means: Vec<f64>,
    pub train_means: Vec<f64>,
    pub train_stds: Vec<f64>,
    /// Rows sampled into the feature accumulators this window.
    pub feature_rows: u64,
    pub feature_max: f64,
    pub feature_argmax: Option<usize>,
    /// Per-model decayed teacher/booster divergence (mean, max, n).
    pub divergence: (f64, f64, u64),
    pub window_age_seconds: f64,
}

impl ModelDrift {
    fn new(
        name: Arc<str>,
        means: &[f64],
        stds: &[f64],
        baseline: Option<&ModelBaseline>,
    ) -> Self {
        Self {
            name,
            live: ScoreSketch::new(),
            features: FeatureStats::new(means.len()),
            // Same ~500-sample effective window as the process-global
            // divergence estimate.
            divergence: DecayStat::new(0.002),
            baseline: baseline.cloned(),
            train_means: means.to_vec(),
            train_stds: stds.to_vec(),
            window_start_ns: now_ns(),
        }
    }

    /// The model name this window belongs to.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// Folds a batch of calibrated **booster** scores into the live
    /// sketch (teacher-variant scores are not comparable to the
    /// booster's training baseline and must not be recorded).
    // audit: no_alloc
    pub fn record_scores(&self, scores: &[f64]) {
        self.live.record_batch(scores);
    }

    /// Samples raw request rows into the per-feature accumulators at a
    /// uniform stride capped at [`FEATURE_SAMPLE_CAP`] rows per batch.
    // audit: no_alloc
    pub fn record_rows(&self, batch: &Matrix) {
        let rows = batch.rows();
        if rows == 0 || batch.cols() != self.features.dim() {
            return;
        }
        let stride = rows.div_ceil(FEATURE_SAMPLE_CAP).max(1);
        let mut r = 0;
        while r < rows {
            self.features.record_row(batch.row(r));
            r += stride;
        }
    }

    /// Folds one A/B response's paired scores into this model's
    /// divergence estimate.
    pub fn observe_divergence(&self, mean_abs: f64, max_abs: f64, n: usize) {
        self.divergence.observe_batch(mean_abs, max_abs, n);
    }

    /// Computes the full drift report for this window.
    pub fn report(&self) -> DriftReport {
        let live = self.live.snapshot();
        let live_samples = live.total();
        let threshold =
            self.baseline.as_ref().map_or(ModelBaseline::DEFAULT_THRESHOLD, |b| b.threshold);
        let baseline_snap = self.baseline.as_ref().map(|b| b.snapshot());
        let psi = match &baseline_snap {
            Some(b) if live_samples > 0 => Some(live.psi(b)),
            _ => None,
        };
        let quantiles = |s: &SketchSnapshot| [s.quantile(0.5), s.quantile(0.9), s.quantile(0.99)];
        let feats = self.features.snapshot();
        let mut feature_shifts = Vec::with_capacity(self.train_means.len());
        let mut feature_max = 0.0f64;
        let mut feature_argmax = None;
        for j in 0..self.train_means.len() {
            let shift = if feats.rows == 0 || self.train_stds[j] <= 0.0 {
                0.0
            } else {
                (feats.means[j] - self.train_means[j]).abs() / self.train_stds[j]
            };
            if shift > feature_max {
                feature_max = shift;
                feature_argmax = Some(j);
            }
            feature_shifts.push(shift);
        }
        DriftReport {
            name: Arc::clone(&self.name),
            psi,
            live_samples,
            baseline_samples: self.baseline.as_ref().map(|b| b.n),
            live_anomaly_rate: live.fraction_at_or_above(threshold),
            train_anomaly_rate: self.baseline.as_ref().map(|b| b.anomaly_rate),
            threshold,
            live_quantiles: quantiles(&live),
            baseline_quantiles: baseline_snap.as_ref().map(|b| quantiles(b)),
            feature_shifts,
            live_means: feats.means,
            train_means: self.train_means.clone(),
            train_stds: self.train_stds.clone(),
            feature_rows: feats.rows,
            feature_max,
            feature_argmax,
            divergence: (self.divergence.mean(), self.divergence.max(), self.divergence.samples()),
            window_age_seconds: now_ns().saturating_sub(self.window_start_ns) as f64 / 1e9,
        }
    }
}

/// One captured slow request, served by `GET /admin/slow`.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub trace_id: u64,
    /// First request byte to end of serialization.
    pub total_ns: u64,
    /// Per-stage durations, indexed by [`Stage`]. `WriteFlush` is
    /// always zero here: flushes are accounted per-socket-write, after
    /// the request has already been captured.
    pub stages: [u64; STAGE_COUNT],
    /// Scored model, when the request reached scoring.
    pub model: Option<Arc<str>>,
    pub variant: Option<VariantTag>,
    pub rows: usize,
    pub status: u16,
}

/// Accumulates one request's stage timings as it moves through the
/// server; [`RequestTimer::finish`] records everything in one shot.
/// Plain value type — it travels with the request (into pool callbacks
/// and reactor completions) rather than living in shared state.
#[derive(Debug, Clone)]
pub struct RequestTimer {
    pub trace_id: u64,
    /// Timestamp of the request's first byte.
    pub t0: u64,
    stages: [u64; STAGE_COUNT],
    model: Option<Arc<str>>,
    variant: Option<VariantTag>,
    rows: usize,
}

impl RequestTimer {
    /// Starts a timer for a request whose first byte arrived at `t0`
    /// (monotonic ns, from [`now_ns`]).
    pub fn start(t0: u64) -> Self {
        Self {
            trace_id: uadb_telemetry::next_trace_id(),
            t0,
            stages: [0; STAGE_COUNT],
            model: None,
            variant: None,
            rows: 0,
        }
    }

    /// Adds `ns` to a stage (stages touched twice — e.g. the two pool
    /// submissions of a `?variant=both` request — accumulate).
    #[inline]
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.stages[stage as usize] += ns;
    }

    pub fn stage(&self, stage: Stage) -> u64 {
        self.stages[stage as usize]
    }

    /// Tags the timer with what it ended up scoring.
    pub fn set_scored(&mut self, model: Arc<str>, variant: VariantTag, rows: usize) {
        self.model = Some(model);
        self.variant = Some(variant);
        self.rows = rows;
    }

    /// Records the finished request: per-stage histograms, the
    /// end-to-end latency histogram, and — when over the slowness
    /// threshold — a slow-ring entry. `total` spans first byte to end
    /// of serialization (write/flush is accounted separately, per
    /// socket write).
    pub fn finish(self, status: u16) {
        let m = metrics();
        let total = now_ns().saturating_sub(self.t0);
        for stage in Stage::all() {
            let ns = self.stages[stage as usize];
            // Zero means the stage never ran for this request (e.g. no
            // body, or a non-scoring route) — skip, so each stage
            // histogram counts only requests that exercised it.
            if ns > 0 {
                m.stage_hist[stage as usize].record(ns);
            }
        }
        m.request_duration.record(total);
        if total >= m.slow_threshold_ns.load(Ordering::Relaxed) {
            m.slow_ring.push(SlowEntry {
                trace_id: self.trace_id,
                total_ns: total,
                stages: self.stages,
                model: self.model,
                variant: self.variant,
                rows: self.rows,
                status,
            });
        }
    }
}

/// All serving metrics, registered once into one [`Registry`].
pub struct ServeMetrics {
    registry: Registry,
    /// Indexed by [`Stage`].
    stage_hist: [Arc<Histogram>; STAGE_COUNT],
    pub request_duration: Arc<Histogram>,
    pub requests_total: Arc<Counter>,
    /// Indexed by [`RejectReason`].
    rejected: [Arc<Counter>; 3],
    pub connections_opened: Arc<Counter>,
    pub connections_closed: Arc<Counter>,
    pub open_connections: Arc<Gauge>,

    pub pool_queue_depth: Arc<Gauge>,
    pub pool_shards_total: Arc<Counter>,
    pub pool_shard_duration: Arc<Histogram>,
    pub pool_busy_ns: Arc<Counter>,
    pub worker_panics: Arc<Counter>,

    divergence: DecayStat,
    div_mean: Arc<FloatGauge>,
    div_max: Arc<FloatGauge>,
    div_samples: Arc<Counter>,

    model_stats: RwLock<BTreeMap<String, Arc<ModelStats>>>,
    shard_stats: RwLock<BTreeMap<usize, Arc<ShardStats>>>,
    /// Live drift windows by model name — entries are *replaced* on
    /// model swap (unlike `model_stats`, which deliberately survives).
    drift: RwLock<BTreeMap<String, Arc<ModelDrift>>>,
    /// Drift gauge series by model name — these do survive swaps, the
    /// refreshed values just come from whichever window is installed.
    drift_gauges: RwLock<BTreeMap<String, DriftGauges>>,
    /// PSI warn threshold (`--drift-warn-psi`) as `f64` bits;
    /// `+inf` disables the warning.
    drift_warn_psi_bits: AtomicU64,
    pub train_epochs: Arc<Counter>,
    train_loss: RwLock<BTreeMap<String, Arc<FloatGauge>>>,
    slow_ring: SlowRing<SlowEntry>,
    slow_threshold_ns: AtomicU64,
}

/// Slow-request capture threshold when `--slow-ms` is not given.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 100_000_000; // 100ms

/// Slow-ring capacity: the last N slow requests an operator can pull
/// back out of `/admin/slow`.
pub const SLOW_RING_CAP: usize = 32;

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let bounds = Histogram::latency_bounds();
        let stage_hist = Stage::all().map(|s| {
            registry.histogram(
                "uadb_stage_duration_seconds",
                "Per-stage request latency.",
                &[("stage", s.name())],
                &bounds,
                9,
            )
        });
        let request_duration = registry.histogram(
            "uadb_request_duration_seconds",
            "End-to-end request latency (first byte to serialized response).",
            &[],
            &bounds,
            9,
        );
        let requests_total =
            registry.counter("uadb_http_requests_total", "HTTP requests routed.", &[]);
        let rejected = [RejectReason::OverBudget, RejectReason::EarlyClose, RejectReason::Stalled]
            .map(|r| {
                registry.counter(
                    "uadb_http_rejected_total",
                    "Requests/connections turned away, by reason.",
                    &[("reason", r.name())],
                )
            });
        let connections_opened =
            registry.counter("uadb_http_connections_opened_total", "Connections accepted.", &[]);
        let connections_closed =
            registry.counter("uadb_http_connections_closed_total", "Connections closed.", &[]);
        let open_connections =
            registry.gauge("uadb_http_open_connections", "Connections currently open.", &[]);

        let pool_queue_depth = registry.gauge(
            "uadb_pool_queue_depth",
            "Scoring shards queued or in flight in the pool.",
            &[],
        );
        let pool_shards_total =
            registry.counter("uadb_pool_shards_total", "Scoring shards executed.", &[]);
        let pool_shard_duration = registry.histogram(
            "uadb_pool_shard_duration_seconds",
            "Per-shard latency from dequeue to scored.",
            &[],
            &bounds,
            9,
        );
        let pool_busy_ns = registry.counter(
            "uadb_pool_worker_busy_nanoseconds_total",
            "Cumulative wall time pool workers spent scoring shards.",
            &[],
        );
        let worker_panics = registry.counter(
            "uadb_pool_worker_panics_total",
            "Scoring shards lost to a worker panic.",
            &[],
        );

        let div_mean = registry.float_gauge(
            "uadb_divergence_mean_abs",
            "Decayed mean |teacher - booster| over paired A/B scores.",
            &[],
        );
        let div_max = registry.float_gauge(
            "uadb_divergence_max_abs",
            "Decayed max |teacher - booster| over paired A/B scores.",
            &[],
        );
        let div_samples = registry.counter(
            "uadb_divergence_samples_total",
            "Paired scores folded into the divergence estimate.",
            &[],
        );

        let train_epochs = registry.counter(
            "uadb_train_epochs_total",
            "Booster training epochs completed in this process.",
            &[],
        );

        Self {
            registry,
            stage_hist,
            request_duration,
            requests_total,
            rejected,
            connections_opened,
            connections_closed,
            open_connections,
            pool_queue_depth,
            pool_shards_total,
            pool_shard_duration,
            pool_busy_ns,
            worker_panics,
            // ~1/0.002 = 500-sample effective window: long enough to
            // smooth batch noise, short enough that drift shows within
            // a few requests' worth of rows.
            divergence: DecayStat::new(0.002),
            div_mean,
            div_max,
            div_samples,
            model_stats: RwLock::new(BTreeMap::new()),
            shard_stats: RwLock::new(BTreeMap::new()),
            drift: RwLock::new(BTreeMap::new()),
            drift_gauges: RwLock::new(BTreeMap::new()),
            drift_warn_psi_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            train_epochs,
            train_loss: RwLock::new(BTreeMap::new()),
            slow_ring: SlowRing::new(SLOW_RING_CAP),
            slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
        }
    }

    /// Records a per-stage duration outside a [`RequestTimer`] (used
    /// for `WriteFlush`, which is per socket write, not per request).
    #[inline]
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stage_hist[stage as usize].record(ns);
    }

    /// Bumps a rejection counter.
    #[inline]
    pub fn reject(&self, reason: RejectReason) {
        self.rejected[reason as usize].inc();
    }

    /// Sum over all rejection reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().map(|c| c.get()).sum()
    }

    /// The counter block for one model, registering its nine series
    /// (3 variants × requests/errors/rows) on first sight. Steady state
    /// is a read-lock and a map probe.
    pub fn model_stats(&self, name: &str) -> Arc<ModelStats> {
        if let Some(stats) = self.model_stats.read().unwrap().get(name) {
            return Arc::clone(stats);
        }
        let mut map = self.model_stats.write().unwrap();
        // Double-checked: another thread may have registered between
        // the read unlock and the write lock.
        if let Some(stats) = map.get(name) {
            return Arc::clone(stats);
        }
        let variants = [VariantTag::Booster, VariantTag::Teacher, VariantTag::Both].map(|tag| {
            let labels = [("model", name), ("variant", tag.name())];
            VariantCounters {
                requests: self.registry.counter(
                    "uadb_model_requests_total",
                    "Scoring requests, by model and variant.",
                    &labels,
                ),
                errors: self.registry.counter(
                    "uadb_model_errors_total",
                    "Failed scoring requests, by model and variant.",
                    &labels,
                ),
                rows: self.registry.counter(
                    "uadb_model_rows_total",
                    "Rows scored, by model and variant.",
                    &labels,
                ),
            }
        });
        let stats = Arc::new(ModelStats { name: Arc::from(name), variants });
        map.insert(name.to_string(), Arc::clone(&stats));
        stats
    }

    /// The counter block for one reactor shard, registering its two
    /// series (`shard=N` accepted/events) on first sight. Shards call
    /// this once at construction and cache the `Arc`.
    pub fn shard_stats(&self, shard: usize) -> Arc<ShardStats> {
        if let Some(stats) = self.shard_stats.read().unwrap().get(&shard) {
            return Arc::clone(stats);
        }
        let mut map = self.shard_stats.write().unwrap();
        // Double-checked: another thread may have registered between
        // the read unlock and the write lock.
        if let Some(stats) = map.get(&shard) {
            return Arc::clone(stats);
        }
        let label = shard.to_string();
        let labels = [("shard", label.as_str())];
        let stats = Arc::new(ShardStats {
            accepted: self.registry.counter(
                "uadb_reactor_accepted_total",
                "Connections accepted, by reactor shard.",
                &labels,
            ),
            events: self.registry.counter(
                "uadb_reactor_events_total",
                "Epoll readiness events delivered, by reactor shard.",
                &labels,
            ),
        });
        map.insert(shard, Arc::clone(&stats));
        stats
    }

    /// Installs a **fresh** drift window for `name`, replacing any
    /// existing one: called whenever a model is registered, reloaded,
    /// or has its teacher attached/detached, so streaming stats never
    /// leak across model swaps. The gauge series for the name are
    /// registered on first sight and survive swaps.
    pub fn install_drift(
        &self,
        name: &str,
        means: &[f64],
        stds: &[f64],
        baseline: Option<&ModelBaseline>,
    ) -> Arc<ModelDrift> {
        {
            let mut gauges = self.drift_gauges.write().unwrap();
            gauges.entry(name.to_string()).or_insert_with(|| {
                let labels = [("model", name)];
                DriftGauges {
                    psi: self.registry.float_gauge(
                        "uadb_score_drift_psi",
                        "PSI of the live calibrated score distribution vs. the training baseline.",
                        &labels,
                    ),
                    feature_max: self.registry.float_gauge(
                        "uadb_feature_drift_max",
                        "Max standardized per-feature mean shift of live traffic vs. training.",
                        &labels,
                    ),
                    anomaly_live: self.registry.float_gauge(
                        "uadb_anomaly_rate",
                        "Fraction of scores at or above the anomaly threshold, by window.",
                        &[("model", name), ("window", "live")],
                    ),
                    anomaly_train: self.registry.float_gauge(
                        "uadb_anomaly_rate",
                        "Fraction of scores at or above the anomaly threshold, by window.",
                        &[("model", name), ("window", "train")],
                    ),
                }
            });
        }
        let drift = Arc::new(ModelDrift::new(Arc::from(name), means, stds, baseline));
        self.drift.write().unwrap().insert(name.to_string(), Arc::clone(&drift));
        // A fresh window means the last-refreshed gauge values are
        // stale; re-derive them now rather than at the next scrape.
        self.refresh_drift_gauges();
        drift
    }

    /// The installed drift window for `name`, if any.
    pub fn drift(&self, name: &str) -> Option<Arc<ModelDrift>> {
        self.drift.read().unwrap().get(name).map(Arc::clone)
    }

    /// Starts a fresh drift window for `name` (same baseline, empty
    /// sketches) — the `/admin/drift/{name}/reset` operation. Returns
    /// `false` when no window is installed under that name.
    pub fn reset_drift(&self, name: &str) -> bool {
        let Some(old) = self.drift(name) else { return false };
        self.install_drift(name, &old.train_means, &old.train_stds, old.baseline.as_ref());
        true
    }

    /// Drift reports for every installed window, by name.
    pub fn drift_reports(&self) -> Vec<DriftReport> {
        let windows: Vec<Arc<ModelDrift>> =
            self.drift.read().unwrap().values().map(Arc::clone).collect();
        windows.iter().map(|d| d.report()).collect()
    }

    /// Recomputes every model's drift signals and pushes them into the
    /// exported gauges — called on scrape, so gauge values are current
    /// as of the request that reads them. Emits the rate-limited
    /// `--drift-warn-psi` warning for any model over the threshold.
    pub fn refresh_drift_gauges(&self) {
        let warn_at = f64::from_bits(self.drift_warn_psi_bits.load(Ordering::Relaxed));
        for report in self.drift_reports() {
            let gauges = self.drift_gauges.read().unwrap();
            let Some(g) = gauges.get(report.name.as_ref()) else { continue };
            let psi = report.psi.unwrap_or(0.0);
            g.psi.set(psi);
            g.feature_max.set(report.feature_max);
            g.anomaly_live.set(report.live_anomaly_rate);
            g.anomaly_train.set(report.train_anomaly_rate.unwrap_or(0.0));
            drop(gauges);
            if psi > warn_at {
                let psi_s = format!("{psi:.4}");
                let warn_s = format!("{warn_at:.4}");
                let samples = report.live_samples.to_string();
                uadb_telemetry::log::logger().log(
                    uadb_telemetry::Level::Warn,
                    "drift",
                    "live score distribution drifted past the PSI threshold",
                    &[
                        ("model", &report.name),
                        ("psi", &psi_s),
                        ("threshold", &warn_s),
                        ("live_samples", &samples),
                    ],
                );
            }
        }
    }

    /// Sets the PSI warn threshold (`--drift-warn-psi`).
    pub fn set_drift_warn_psi(&self, threshold: f64) {
        self.drift_warn_psi_bits.store(threshold.to_bits(), Ordering::Relaxed);
    }

    /// Registers (on first sight) and returns the per-model last-loss
    /// gauge, and bumps nothing — pair with [`ServeMetrics::train_epochs`].
    pub fn train_loss_gauge(&self, model: &str) -> Arc<FloatGauge> {
        if let Some(g) = self.train_loss.read().unwrap().get(model) {
            return Arc::clone(g);
        }
        let mut map = self.train_loss.write().unwrap();
        if let Some(g) = map.get(model) {
            return Arc::clone(g);
        }
        let g = self.registry.float_gauge(
            "uadb_train_last_loss",
            "Mean training loss of the most recent completed epoch, by model.",
            &[("model", model)],
        );
        map.insert(model.to_string(), Arc::clone(&g));
        g
    }

    /// Records one completed training epoch: bumps the process epoch
    /// counter and refreshes the per-model last-loss gauge.
    pub fn observe_train_epoch(&self, model: &str, loss: f64) {
        self.train_epochs.inc();
        self.train_loss_gauge(model).set(loss);
    }

    /// Folds one A/B response's paired scores into the streaming
    /// divergence estimate and refreshes the exported gauges.
    pub fn observe_divergence(&self, booster: &[f64], teacher: &[f64]) -> Option<(f64, f64, usize)> {
        let n = booster.len().min(teacher.len());
        if n == 0 {
            return None;
        }
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for i in 0..n {
            let d = (booster[i] - teacher[i]).abs();
            sum += d;
            if d > max {
                max = d;
            }
        }
        self.divergence.observe_batch(sum / n as f64, max, n);
        self.div_mean.set(self.divergence.mean());
        self.div_max.set(self.divergence.max());
        self.div_samples.add(n as u64);
        // The per-batch stats are returned so callers can fan the same
        // pair into a per-model divergence window without re-scanning.
        Some((sum / n as f64, max, n))
    }

    /// Current decayed (mean |Δ|, max |Δ|, samples) divergence view.
    pub fn divergence_summary(&self) -> (f64, f64, u64) {
        (self.divergence.mean(), self.divergence.max(), self.divergence.samples())
    }

    /// End-to-end latency snapshot (drives the `/healthz` quantiles).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.request_duration.snapshot()
    }

    /// Last captured slow requests, oldest first.
    pub fn slow_snapshot(&self) -> Vec<SlowEntry> {
        self.slow_ring.snapshot()
    }

    pub fn set_slow_threshold_ms(&self, ms: u64) {
        self.slow_threshold_ns.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Bumps the per-model error counter and emits the structured error
    /// log every scoring failure gets (worker panics are server bugs
    /// and log at error level; request-shape failures at debug).
    pub fn record_score_error(
        &self,
        stats: &ModelStats,
        tag: VariantTag,
        err: &ScoreError,
        trace_id: u64,
    ) {
        stats.variant(tag).errors.inc();
        let level = match err {
            ScoreError::WorkerPanicked => uadb_telemetry::Level::Error,
            _ => uadb_telemetry::Level::Debug,
        };
        let trace = trace_id.to_string();
        uadb_telemetry::log::logger().log(
            level,
            "score",
            "scoring failed",
            &[
                ("trace", &trace),
                ("model", &stats.name),
                ("variant", tag.name()),
                ("error", err.metric_label()),
            ],
        );
    }

    /// Renders the full exposition: every registered family, then the
    /// GEMM kernel counters (feature-gated in `uadb_linalg`; all-zero
    /// when compiled out) and the logger's suppression counter, which
    /// live outside the registry.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(8192);
        self.registry.render_into(&mut out);

        let ks = uadb_linalg::gemm::stats::snapshot();
        out.push_str("# HELP uadb_gemm_packs_built_total GEMM weight packings built.\n");
        out.push_str("# TYPE uadb_gemm_packs_built_total counter\n");
        out.push_str(&format!("uadb_gemm_packs_built_total {}\n", ks.packs_built));
        out.push_str(
            "# HELP uadb_gemm_packs_reused_total GEMM calls served from a cached packing.\n",
        );
        out.push_str("# TYPE uadb_gemm_packs_reused_total counter\n");
        out.push_str(&format!("uadb_gemm_packs_reused_total {}\n", ks.packs_reused));
        out.push_str("# HELP uadb_gemm_calls_total GEMM kernel invocations, by ISA path.\n");
        out.push_str("# TYPE uadb_gemm_calls_total counter\n");
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"avx512\"}} {}\n", ks.calls_avx512));
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"avx\"}} {}\n", ks.calls_avx));
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"portable\"}} {}\n", ks.calls_portable));

        out.push_str(
            "# HELP uadb_log_dropped_total Log messages suppressed by the rate limiter.\n",
        );
        out.push_str("# TYPE uadb_log_dropped_total counter\n");
        out.push_str(&format!(
            "uadb_log_dropped_total {}\n",
            uadb_telemetry::log::logger().dropped()
        ));
        out
    }
}

static METRICS: OnceLock<ServeMetrics> = OnceLock::new();

/// The process-global serving metrics.
pub fn metrics() -> &'static ServeMetrics {
    METRICS.get_or_init(ServeMetrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_stats_registered_once_and_shared() {
        let m = metrics();
        let a = m.model_stats("telemetry-test-model");
        let b = m.model_stats("telemetry-test-model");
        assert!(Arc::ptr_eq(&a, &b));
        a.variant(VariantTag::Booster).requests.inc();
        a.variant(VariantTag::Booster).rows.add(5);
        let text = m.render();
        assert!(text.contains(
            "uadb_model_requests_total{model=\"telemetry-test-model\",variant=\"booster\"}"
        ));
        assert!(text.contains(
            "uadb_model_rows_total{model=\"telemetry-test-model\",variant=\"teacher\"} 0"
        ));
    }

    #[test]
    fn render_includes_gemm_and_log_sections() {
        let text = metrics().render();
        assert!(text.contains("# TYPE uadb_gemm_calls_total counter"));
        assert!(text.contains("uadb_gemm_calls_total{isa=\"portable\"}"));
        assert!(text.contains("# TYPE uadb_log_dropped_total counter"));
    }

    #[test]
    fn divergence_updates_gauges() {
        let m = metrics();
        let before = m.divergence_summary().2;
        m.observe_divergence(&[0.5, 0.5], &[0.5, 0.7]);
        let (mean, max, samples) = m.divergence_summary();
        assert!(mean > 0.0);
        assert!(max >= 0.2 - 1e-12);
        assert_eq!(samples, before + 2);
    }

    #[test]
    fn timer_records_slow_entry() {
        let m = metrics();
        // Threshold 0: every finished request is captured.
        m.set_slow_threshold_ms(0);
        let mut t = RequestTimer::start(now_ns());
        t.add(Stage::Parse, 1_000);
        t.add(Stage::Score, 2_000);
        t.set_scored(Arc::from("slow-model"), VariantTag::Both, 3);
        let id = t.trace_id;
        t.finish(200);
        m.set_slow_threshold_ms(DEFAULT_SLOW_THRESHOLD_NS / 1_000_000);
        let snap = m.slow_snapshot();
        let entry = snap.iter().rev().find(|e| e.trace_id == id).expect("captured");
        assert_eq!(entry.rows, 3);
        assert_eq!(entry.status, 200);
        assert_eq!(entry.stages[Stage::Score as usize], 2_000);
        assert_eq!(entry.model.as_deref(), Some("slow-model"));
    }

    #[test]
    fn drift_window_tracks_shift_and_resets_clean() {
        let m = metrics();
        // Baseline: scores clustered low, feature means at 0 with unit std.
        let train_scores: Vec<f64> = (0..200).map(|i| 0.1 + (i % 10) as f64 * 0.02).collect();
        let baseline = ModelBaseline::from_scores(&train_scores);
        let d = m.install_drift("drift-test-model", &[0.0, 0.0], &[1.0, 1.0], Some(&baseline));

        // Live traffic: scores shifted high, feature 0 shifted by +5σ.
        let live: Vec<f64> = (0..200).map(|i| 0.8 + (i % 10) as f64 * 0.01).collect();
        d.record_scores(&live);
        let rows: Vec<Vec<f64>> = (0..32).map(|_| vec![5.0, 0.0]).collect();
        d.record_rows(&Matrix::from_rows(&rows).unwrap());

        let report = d.report();
        assert_eq!(report.live_samples, 200);
        assert!(report.psi.unwrap() > 0.25, "shifted scores must exceed the PSI alert band");
        assert!(report.live_anomaly_rate > 0.9);
        assert_eq!(report.feature_argmax, Some(0));
        assert!((report.feature_max - 5.0).abs() < 1e-9);

        m.refresh_drift_gauges();
        let text = m.render();
        assert!(text.contains("uadb_score_drift_psi{model=\"drift-test-model\"}"));
        assert!(text.contains("uadb_feature_drift_max{model=\"drift-test-model\"} 5"));
        assert!(text.contains("uadb_anomaly_rate{model=\"drift-test-model\",window=\"live\"}"));
        assert!(text.contains("uadb_anomaly_rate{model=\"drift-test-model\",window=\"train\"}"));

        // Reset: fresh window, same baseline, handle map re-pointed.
        assert!(m.reset_drift("drift-test-model"));
        let fresh = m.drift("drift-test-model").unwrap();
        assert!(!Arc::ptr_eq(&d, &fresh));
        let report = fresh.report();
        assert_eq!(report.live_samples, 0);
        assert_eq!(report.feature_rows, 0);
        assert!(report.psi.is_none(), "empty window has no PSI yet");
        assert_eq!(report.baseline_samples, Some(200));
        assert!(!m.reset_drift("no-such-model"));
    }

    #[test]
    fn install_drift_replaces_window_but_keeps_gauge_series() {
        let m = metrics();
        let a = m.install_drift("drift-swap-model", &[0.0], &[1.0], None);
        a.record_scores(&[0.9; 50]);
        // Simulate /admin/reload: a new model install starts a clean window.
        let b = m.install_drift("drift-swap-model", &[1.0], &[2.0], None);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.report().live_samples, 0);
        // No baseline → PSI gauge reads 0, not stale pre-swap data.
        m.refresh_drift_gauges();
        assert!(m.render().contains("uadb_score_drift_psi{model=\"drift-swap-model\"} 0"));
    }

    #[test]
    fn train_epoch_observations_feed_counter_and_loss_gauge() {
        let m = metrics();
        let before = m.train_epochs.get();
        m.observe_train_epoch("train-obs-model", 0.75);
        m.observe_train_epoch("train-obs-model", 0.5);
        assert_eq!(m.train_epochs.get(), before + 2);
        let text = m.render();
        assert!(text.contains("uadb_train_last_loss{model=\"train-obs-model\"} 0.5"));
        assert!(text.contains("# TYPE uadb_train_epochs_total counter"));
        // Gauge registration is idempotent per model name.
        assert!(Arc::ptr_eq(&m.train_loss_gauge("train-obs-model"), &m.train_loss_gauge("train-obs-model")));
    }

    #[test]
    fn reject_reasons_accumulate() {
        let m = metrics();
        let before = m.rejected_total();
        m.reject(RejectReason::OverBudget);
        m.reject(RejectReason::Stalled);
        assert_eq!(m.rejected_total(), before + 2);
    }
}
