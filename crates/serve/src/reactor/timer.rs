//! A hashed timer wheel for connection deadlines.
//!
//! The reactor needs thousands of concurrently armed, constantly
//! rescheduled timeouts (every request on every connection moves its
//! deadline), but only coarse accuracy — an idle connection closed a
//! few milliseconds late is indistinguishable from one closed on time.
//! A wheel gives O(1) insert and O(slots) sweep with **lazy
//! cancellation**: entries are never removed when a deadline moves;
//! instead the reactor re-checks the connection's authoritative
//! deadline when an entry fires and simply re-arms if it moved. Stale
//! entries for dead connections are filtered by the generation check in
//! the reactor.

use std::time::{Duration, Instant};

/// Timer keys are `(slot index, generation, sequence)` triples: index
/// and generation identify the connection exactly like epoll tokens
/// (a fired entry for a freed-and-reused slot is detected and
/// dropped), and the per-connection sequence lets a *newer, earlier*
/// arm supersede an entry already in the wheel — firing a stale
/// sequence is a no-op, restoring the one-live-entry invariant without
/// ever searching the wheel.
pub type TimerKey = (u32, u32, u32);

/// A single-level hashed timer wheel.
pub struct TimerWheel {
    slots: Vec<Vec<TimerKey>>,
    tick: Duration,
    cursor: usize,
    /// The wall-clock instant the cursor's slot represents.
    cursor_time: Instant,
}

impl TimerWheel {
    /// Number of wheel slots; with `tick ≥ span / (SLOTS / 2)` the
    /// wheel always covers the longest deadline without wrapping.
    const SLOTS: usize = 512;

    /// A wheel sized so `span` (the longest deadline in use, i.e. the
    /// idle timeout) fits in half a rotation, with at least
    /// 5ms resolution so short test timeouts stay cheap to sweep.
    pub fn new(now: Instant, span: Duration) -> Self {
        let tick = (span / (Self::SLOTS as u32 / 2)).max(Duration::from_millis(5));
        Self { slots: vec![Vec::new(); Self::SLOTS], tick, cursor: 0, cursor_time: now }
    }

    /// Arms `key` to fire at `deadline`. Deadlines beyond the wheel's
    /// horizon are clamped to the farthest slot — they fire early, and
    /// the reactor's lazy re-check re-arms them (cheap: one wheel hop
    /// per rotation, only for pathologically long deadlines).
    pub fn schedule(&mut self, now: Instant, deadline: Instant, key: TimerKey) {
        let delay = deadline.saturating_duration_since(now);
        let ticks = (delay.as_nanos() / self.tick.as_nanos()).saturating_add(1);
        let ticks = (ticks as usize).clamp(1, Self::SLOTS - 1);
        let slot = (self.cursor + ticks) % Self::SLOTS;
        self.slots[slot].push(key);
    }

    /// Sweeps every slot whose time has come, appending the fired keys
    /// to `expired`. Bounded to one full rotation per call so a long
    /// stall cannot spin the cursor unboundedly.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<TimerKey>) {
        let mut hops = 0;
        while now.saturating_duration_since(self.cursor_time) >= self.tick && hops < Self::SLOTS {
            self.cursor = (self.cursor + 1) % Self::SLOTS;
            self.cursor_time += self.tick;
            expired.append(&mut self.slots[self.cursor]);
            hops += 1;
        }
    }

    /// Milliseconds until the next slot boundary — the `epoll_wait`
    /// timeout that keeps the wheel turning (always ≥ 1 so an
    /// in-progress tick never busy-spins).
    pub fn next_tick_ms(&self, now: Instant) -> i32 {
        let next = self.cursor_time + self.tick;
        let wait = next.saturating_duration_since(now);
        wait.as_millis().clamp(1, i32::MAX as u128) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_secs(30));
        let tick = wheel.tick;
        wheel.schedule(t0, t0 + tick * 3, (1, 1, 0));
        wheel.schedule(t0, t0 + tick * 10, (2, 1, 0));
        let mut fired = Vec::new();
        // One tick in: nothing fires.
        wheel.advance(t0 + tick, &mut fired);
        assert!(fired.is_empty());
        // Past the first deadline (+1 slot rounding): the first fires.
        wheel.advance(t0 + tick * 5, &mut fired);
        assert_eq!(fired, vec![(1, 1, 0)]);
        fired.clear();
        wheel.advance(t0 + tick * 12, &mut fired);
        assert_eq!(fired, vec![(2, 1, 0)]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(100));
        wheel.schedule(t0, t0, (9, 2, 0)); // already due
        let mut fired = Vec::new();
        wheel.advance(t0 + wheel.tick * 2, &mut fired);
        assert_eq!(fired, vec![(9, 2, 0)]);
    }

    #[test]
    fn horizon_overflow_clamps_instead_of_wrapping_onto_near_slots() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(100));
        let tick = wheel.tick;
        // Far beyond the horizon: must not fire within the next few
        // ticks (it lands on the farthest slot, not cursor+1).
        wheel.schedule(t0, t0 + tick * 10_000, (3, 1, 0));
        let mut fired = Vec::new();
        wheel.advance(t0 + tick * 16, &mut fired);
        assert!(fired.is_empty(), "far deadline fired early: {fired:?}");
    }

    #[test]
    fn advance_is_bounded_per_call() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, Duration::from_millis(100));
        let tick = wheel.tick;
        let mut fired = Vec::new();
        // A huge stall sweeps at most one rotation per call and keeps
        // time monotonic.
        wheel.advance(t0 + tick * 100_000, &mut fired);
        wheel.schedule(t0 + tick * 100_000, t0 + tick * 100_002, (5, 5, 0));
        wheel.advance(t0 + tick * 100_004, &mut fired);
        assert!(fired.contains(&(5, 5, 0)));
    }
}
