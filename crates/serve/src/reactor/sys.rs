//! Raw `extern "C"` bindings to the handful of Linux syscall wrappers
//! the reactor needs beyond what `std::net` exposes: epoll and a
//! nonblocking wakeup pipe. No new dependencies — the symbols live in
//! the libc every Rust binary on Linux already links.
//!
//! Everything is wrapped in RAII types ([`Epoll`], [`WakePipe`]) so no
//! raw fd outlives its owner, and every call site funnels errno through
//! `io::Error::last_os_error()`.

use std::ffi::{c_int, c_void};
use std::io;
use std::os::fd::RawFd;

/// There is data to read.
pub const EPOLLIN: u32 = 0x001;
/// Writing is possible again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (must be requested explicitly).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: readiness is reported once per transition,
/// so the consumer must drain to `EAGAIN` before parking again.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

/// `struct epoll_event`. On x86 the kernel ABI packs the 12-byte
/// struct; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token returned verbatim with the event.
    pub data: u64,
}

impl EpollEvent {
    /// An empty placeholder for the `epoll_wait` output array.
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;

/// `struct sockaddr_in` (IPv4), network byte order where the ABI says so.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct sockaddr_in6` (IPv6).
#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Binds a listener with `SO_REUSEPORT` set *before* `bind`, which std
/// cannot do — the kernel then load-balances incoming connections
/// across every listener sharing the address, one per reactor shard.
/// Fails cleanly (for the caller to fall back on) where the option is
/// unavailable or the address is contended by a non-REUSEPORT socket.
pub fn bind_reuseport(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    use std::os::fd::FromRawFd;

    let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    // SAFETY: plain syscall, no pointers.
    let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrap immediately: any error below must close the fd exactly once.
    // SAFETY: `fd` is a fresh socket we own; the listener takes sole
    // ownership (listen() below makes the wrapper semantically true).
    let owned = unsafe { std::net::TcpListener::from_raw_fd(fd) };
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        let one: c_int = 1;
        // SAFETY: `one` is a live c_int whose exact size is passed.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&one as *const c_int).cast::<c_void>(),
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    let rc = match addr {
        std::net::SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a valid sockaddr_in outliving the call.
            unsafe {
                bind(fd, (&sa as *const SockAddrIn).cast::<c_void>(), {
                    std::mem::size_of::<SockAddrIn>() as u32
                })
            }
        }
        std::net::SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: `sa` is a valid sockaddr_in6 outliving the call.
            unsafe {
                bind(fd, (&sa as *const SockAddrIn6).cast::<c_void>(), {
                    std::mem::size_of::<SockAddrIn6>() as u32
                })
            }
        }
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: plain syscall on an fd we own.
    if unsafe { listen(fd, 1024) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(owned)
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` for `interest`, tagging events with `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest set of an already-watched `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stops watching `fd`. (A close also deregisters implicitly, but
    /// only once every duplicate of the description is gone — explicit
    /// removal keeps the interest list exact.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on every kernel ≥ 2.6.9
        // but must be non-null on the ancient ones; pass one anyway.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (−1 = forever) for readiness events;
    /// returns how many landed in `events`. `EINTR` is retried
    /// internally with the same timeout.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let max = events.len().min(c_int::MAX as usize) as c_int;
            // SAFETY: the out-pointer covers `max` valid elements.
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

/// The write end of the wakeup pipe, cloneable into scoring-pool
/// completion callbacks and the shutdown waker. Owning the fd in a
/// shared handle (instead of a raw copy) guarantees no callback can
/// ever write to a *reused* fd number after the reactor is gone — the
/// fd stays open until the last handle drops.
pub struct WakeWriter {
    fd: RawFd,
}

impl WakeWriter {
    /// Writes one byte; a full pipe (`EAGAIN`) is success — the reactor
    /// is already guaranteed to wake — and any other failure means the
    /// reactor is tearing down, which is fine to ignore too.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one valid byte, owned fd.
        unsafe { write(self.fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }
}

impl Drop for WakeWriter {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking self-pipe: the reactor holds the read end and parks in
/// `epoll_wait` on it; scoring-pool completion callbacks and the
/// shutdown waker hold [`WakeWriter`] clones of the write end.
pub struct WakePipe {
    read_fd: RawFd,
}

impl WakePipe {
    /// `pipe2(O_NONBLOCK | O_CLOEXEC)`, returning the owned read end
    /// and a shareable write handle.
    pub fn new() -> io::Result<(Self, std::sync::Arc<WakeWriter>)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid out-array of two ints.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((Self { read_fd: fds[0] }, std::sync::Arc::new(WakeWriter { fd: fds[1] })))
    }

    /// The fd to register with epoll.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Drains every pending wakeup byte (level-triggered epoll would
    /// otherwise re-report immediately).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: valid buffer, owned fd.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return; // empty (EAGAIN), closed, or error — all final
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.read_fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuseport_listeners_share_one_address() {
        let first = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        assert_ne!(addr.port(), 0, "bound to a concrete port");
        // A second REUSEPORT listener binds the same concrete address —
        // the kernel will balance accepts between them.
        let second = bind_reuseport(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
        // Connects complete against the shared backlog.
        let _client = std::net::TcpStream::connect(addr).unwrap();
    }

    #[test]
    fn wake_pipe_round_trips_and_drains() {
        let (pipe, writer) = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.fd(), EPOLLIN, 7).unwrap();
        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // Wakeups coalesce and are reported with the registered token.
        writer.wake();
        writer.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        pipe.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // The writer outliving the epoll registration is fine.
        drop(ep);
        writer.wake();
    }
}
