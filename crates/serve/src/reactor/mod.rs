//! Event-driven epoll backend: N reactor shards, each owning a slice
//! of the client sockets.
//!
//! The threaded backend spends one OS thread per connection, so its
//! connection budget is capped by how many mostly-idle threads the host
//! tolerates. This module replaces that with the classic reactor shape
//! (Linux only, the Linux default — `serve --io epoll`):
//!
//! * **One loop per shard, all sockets sharded.** `--shards N` runs N
//!   independent epoll loops ([`sys::Epoll`], raw `extern "C"`
//!   bindings — no new dependencies), each with its own slab, timer
//!   wheel and wakeup pipe, all submitting to the one shared scoring
//!   pool. Shards normally each own a `SO_REUSEPORT` listener so the
//!   kernel spreads accepts; when that bind fails, shard 0 owns the
//!   sole listener and hands accepted sockets to its siblings
//!   round-robin over their wakeup pipes. A connection costs a
//!   [`Conn`] struct and byte buffers, not a thread, so budgets of
//!   thousands are routine.
//! * **Edge-triggered sockets.** Connections register with `EPOLLET`
//!   and every read/write loop drains to `EAGAIN`, so the kernel
//!   reports each readiness transition once instead of re-reporting
//!   level state on every tick. The listener and wakeup pipe stay
//!   level-triggered: the accept burst cap ([`ACCEPT_BURST`]) relies
//!   on the remainder re-reporting next tick.
//! * **Per-connection state machine.** Bytes read on readiness feed the
//!   shared sans-io parser (`http::parse_request`); every complete
//!   request routes through the shared router; responses queue as
//!   iovec chunks (`Response::queue_into`) and flush with vectored
//!   `writev` — a pipelined burst of K responses costs O(1) syscalls.
//! * **Scoring never blocks the loop.** A scoring request is submitted
//!   to the model's [`crate::pool::ScoringPool`] with a completion
//!   callback that pushes the finished response onto the shard's queue
//!   and writes its **wakeup pipe**; the loop drains completions on
//!   wakeup. While a connection waits for its score, its read interest
//!   is dropped — natural backpressure that also bounds buffer growth.
//! * **Timer wheel.** Idle and mid-request deadlines live in a
//!   per-shard hashed wheel ([`timer::TimerWheel`]) with lazy
//!   cancellation: O(1) arming per request, one live entry per
//!   connection, coarse-grained sweeps. Idle connections close
//!   silently; a request stalled mid-transfer (slow-loris) gets the
//!   same best-effort `408` as the threaded backend.
//! * **Shutdown via the same pipes.** The server handle's stop signal
//!   registers one waker per shard that writes that shard's wakeup
//!   pipe, so every `epoll_wait` returns immediately and the loops
//!   tear down.
//!
//! Keep-alive semantics, the `503` connection budget (global across
//! shards), request caps and response bytes are identical to the
//! threaded backend — the integration suite runs against both and
//! asserts bit-identical scoring responses.

mod sys;
mod timer;

pub(crate) use sys::bind_reuseport;

use crate::http::{
    over_budget_response, parse_request, route, stalled_response, truncated_response,
    ConnectionDriver, DriverCtx, IoMode, Parse, Response, RouteCtx, Routed, MAX_ACCEPT_FAILURES,
};
use crate::telemetry::{metrics, RequestTimer, ShardStats, Stage};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sys::{
    Epoll, EpollEvent, WakePipe, WakeWriter, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};
use timer::TimerWheel;
use uadb_telemetry::{log::logger, now_ns, Level};

/// Event token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Event token of the wakeup pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Readiness events harvested per `epoll_wait`.
const EVENT_BATCH: usize = 1024;
/// Connections accepted per reactor tick before yielding back to the
/// event loop, so a connect flood cannot starve in-flight connection
/// I/O. The listener is level-triggered: the remainder of the backlog
/// re-reports on the next `epoll_wait`.
const ACCEPT_BURST: usize = 64;
/// Queued response chunks gathered into one `writev` call.
const MAX_IOV: usize = 64;

/// Connection slots are addressed `(index, generation)`; the generation
/// guards against a stale epoll event or timer entry touching a slot
/// that was freed and reused for a newer connection.
fn token(idx: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(idx)
}

/// A finished scoring response travelling from a pool worker back to
/// the owning reactor shard.
struct Completion {
    idx: u32,
    gen: u32,
    response: Response,
    /// Whether this response closes the connection (decided at dispatch
    /// time from keep-alive/max-requests/shutdown state).
    close: bool,
    /// The request's stage timer, carried through the pool round-trip;
    /// finished once the response is serialized on the reactor thread.
    timer: RequestTimer,
}

/// A listener-less sibling shard's intake, held by the shard that owns
/// the sole listener when `SO_REUSEPORT` is unavailable: accepted
/// sockets are pushed into `inbox` and the sibling is woken to drain.
struct Handoff {
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    waker: Arc<WakeWriter>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Unparsed request bytes (parsed requests are drained off the
    /// front).
    rbuf: Vec<u8>,
    /// Serialized responses awaiting the socket, as `writev` chunks:
    /// heads and small bodies coalesce into shared chunks, large score
    /// payloads sit as their own chunk (moved, never copied).
    wqueue: VecDeque<Vec<u8>>,
    /// How much of the front chunk has been written (partial-write
    /// resumption).
    wpos: usize,
    /// Requests served on this connection (max-requests cap).
    served: usize,
    /// Currently registered epoll interest (sans `EPOLLET`, which every
    /// connection registration adds).
    interest: u32,
    /// A scoring request is in flight; parsing and reading are paused
    /// until its completion arrives.
    waiting: bool,
    /// Close once the write queue fully drains (error responses,
    /// `Connection: close`, request cap, shutdown).
    close_after_flush: bool,
    /// Peer sent EOF; never read again, close once nothing is pending.
    peer_eof: bool,
    /// Authoritative deadline the timer wheel's lazy entries check.
    deadline: Instant,
    /// Sequence of the connection's one *live* wheel entry; entries
    /// firing with an older sequence are stale and ignored.
    timer_seq: u32,
    /// When the live wheel entry fires. A deadline moving *later* is
    /// handled lazily (the entry re-arms on fire); a deadline moving
    /// *earlier* than this must arm a fresh entry, superseding the old
    /// one via the sequence.
    armed_for: Instant,
    /// When the first byte of the request currently arriving landed
    /// (0 = no request in flight) — start of its head-read stage.
    t_first: u64,
    /// When that request's header block completed (0 = not yet) — the
    /// head-read / body-read boundary.
    t_head: u64,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wqueue.is_empty()
    }
}

/// The epoll-backed [`ConnectionDriver`].
pub struct EpollDriver;

impl ConnectionDriver for EpollDriver {
    fn name(&self) -> &'static str {
        IoMode::Epoll.name()
    }

    fn run(&self, listeners: Vec<TcpListener>, ctx: DriverCtx) -> io::Result<()> {
        run_sharded(listeners, ctx)
    }
}

/// Builds one [`Reactor`] per shard, spawns shards 1..N on their own
/// threads and runs shard 0 on the calling thread. Shard `i` owns
/// `listeners[i]` when the `SO_REUSEPORT` group bound; otherwise shard
/// 0 owns the sole listener and feeds the rest through their inboxes.
/// Any shard exiting triggers stop so the whole backend winds down
/// together; shard 0's verdict is the backend's.
fn run_sharded(listeners: Vec<TcpListener>, ctx: DriverCtx) -> io::Result<()> {
    let shards = ctx.cfg.shards.max(1);
    let n_listeners = listeners.len();
    // Pipes and inboxes exist before any shard runs: shard 0 needs
    // every listener-less sibling's handoff endpoints up front.
    let mut slots = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (pipe, waker) = WakePipe::new()?;
        let inbox = Arc::new(Mutex::new(Vec::new()));
        slots.push((pipe, waker, inbox));
    }
    let mut peers: Vec<Handoff> = slots
        .iter()
        .skip(n_listeners.max(1))
        .map(|(_, waker, inbox)| Handoff { inbox: Arc::clone(inbox), waker: Arc::clone(waker) })
        .collect();
    let mut listeners = listeners.into_iter();
    let mut reactors = Vec::with_capacity(shards);
    for (shard, (pipe, waker, inbox)) in slots.into_iter().enumerate() {
        let shard_peers = if shard == 0 { std::mem::take(&mut peers) } else { Vec::new() };
        let shard_ctx = DriverCtx {
            registry: Arc::clone(&ctx.registry),
            cfg: ctx.cfg.clone(),
            stats: Arc::clone(&ctx.stats),
            stop: Arc::clone(&ctx.stop),
        };
        reactors.push(Reactor::new(
            shard,
            listeners.next(),
            pipe,
            waker,
            inbox,
            shard_peers,
            shard_ctx,
        )?);
    }
    let mut reactors = reactors.into_iter();
    let Some(mut shard0) = reactors.next() else {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no reactor shards"));
    };
    let mut handles = Vec::new();
    for (i, mut reactor) in reactors.enumerate() {
        let spawned = std::thread::Builder::new()
            .name(format!("uadb-serve-shard-{}", i + 1))
            .spawn(move || {
                if let Err(e) = reactor.run() {
                    let shard = (i + 1).to_string();
                    let err = e.to_string();
                    logger().log(
                        Level::Error,
                        "reactor",
                        "shard exited with error",
                        &[("shard", &shard), ("error", &err)],
                    );
                }
            });
        match spawned {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                ctx.stop.trigger();
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }
    let result = shard0.run();
    // Shard 0 returning — listener death or stop — takes the whole
    // backend down: wake the siblings and wait for them to drain.
    ctx.stop.trigger();
    for handle in handles {
        let _ = handle.join();
    }
    result
}

struct Reactor {
    ep: Epoll,
    /// `None` on listener-less shards (REUSEPORT-unavailable fallback):
    /// connections arrive through `inbox` instead.
    listener: Option<TcpListener>,
    pipe: WakePipe,
    waker: Arc<WakeWriter>,
    /// Sockets handed off by the listener-owning shard; drained on
    /// wakeup.
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    /// Listener-less siblings this shard feeds round-robin (only ever
    /// non-empty on shard 0, only in the fallback mode).
    peers: Vec<Handoff>,
    /// Round-robin cursor over `1 + peers.len()` targets (0 = self).
    rr: usize,
    conns: Vec<Option<Conn>>,
    /// Current generation per slot (bumped on free).
    gens: Vec<u32>,
    free: Vec<u32>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wheel: TimerWheel,
    ctx: DriverCtx,
    accept_failures: u32,
    /// This shard's telemetry block, cached so the hot paths never
    /// touch the registry lock.
    stats: Arc<ShardStats>,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard: usize,
        listener: Option<TcpListener>,
        pipe: WakePipe,
        waker: Arc<WakeWriter>,
        inbox: Arc<Mutex<Vec<TcpStream>>>,
        peers: Vec<Handoff>,
        ctx: DriverCtx,
    ) -> io::Result<Self> {
        let ep = Epoll::new()?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            ep.add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        }
        ep.add(pipe.fd(), EPOLLIN, TOKEN_WAKE)?;
        // Shutdown interrupts `epoll_wait` through the same pipe the
        // scoring completions use; every shard registers its own waker.
        let stop_waker = Arc::clone(&waker);
        ctx.stop.add_waker(Box::new(move || stop_waker.wake()));
        let now = Instant::now();
        let span = ctx.cfg.idle_timeout.max(ctx.cfg.io_timeout);
        Ok(Self {
            ep,
            listener,
            pipe,
            waker,
            inbox,
            peers,
            rr: 0,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            completions: Arc::new(Mutex::new(Vec::new())),
            wheel: TimerWheel::new(now, span),
            ctx,
            accept_failures: 0,
            stats: metrics().shard_stats(shard),
        })
    }

    fn open_conns(&self) -> usize {
        self.conns.len() - self.free.len()
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];
        let mut expired = Vec::new();
        loop {
            if self.ctx.stop.is_stopped() {
                break;
            }
            // With no connections there is nothing to time out: park
            // until the listener or the wakeup pipe fires. Otherwise
            // wake at the next wheel tick.
            let timeout_ms =
                if self.open_conns() == 0 { -1 } else { self.wheel.next_tick_ms(Instant::now()) };
            let n = self.ep.wait(&mut events, timeout_ms)?;
            if self.ctx.stop.is_stopped() {
                break;
            }
            self.stats.events.add(n as u64);
            let now = Instant::now();
            for ev in &events[..n] {
                // Copies out of the (packed) event struct.
                let (bits, data) = (ev.events, ev.data);
                match data {
                    TOKEN_LISTENER => self.accept_burst(now)?,
                    TOKEN_WAKE => {
                        self.pipe.drain();
                        self.drain_inbox(now);
                        self.drain_completions();
                    }
                    tok => self.conn_event(tok, bits, now),
                }
            }
            let now = Instant::now();
            expired.clear();
            self.wheel.advance(now, &mut expired);
            for (idx, gen, seq) in expired.drain(..) {
                self.timer_fired(idx, gen, seq, now);
            }
        }
        // Teardown: close every connection so the budget counter ends
        // balanced; sockets close on drop. Outstanding scoring
        // completions harmlessly accumulate in the shared queue, as do
        // handed-off sockets never drained from the inbox.
        for idx in 0..self.conns.len() as u32 {
            self.close_conn(idx);
        }
        Ok(())
    }

    // ------------------------- accept path ---------------------------

    fn accept_burst(&mut self, now: Instant) -> io::Result<()> {
        // Bounded burst: the listener is level-triggered, so anything
        // past the cap re-reports next tick instead of starving the
        // connections already being served.
        for _ in 0..ACCEPT_BURST {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return Ok(()),
            };
            match accepted {
                Ok((mut stream, _peer)) => {
                    self.accept_failures = 0;
                    // The budget is global across shards. Sockets
                    // handed to a sibling count only once that shard
                    // registers them, so a burst can overshoot by the
                    // handful of handoffs in flight — bounded by
                    // ACCEPT_BURST, never compounding.
                    if self.ctx.stats.open_connections() >= self.ctx.cfg.max_connections {
                        // Over budget: best-effort nonblocking 503 and
                        // drop. ~130 bytes always fit a fresh socket's
                        // send buffer. ONE bounded nonblocking read
                        // first drains a typical already-arrived
                        // request so the close sends a clean FIN
                        // instead of an RST racing the 503 — never
                        // more, because this runs on the event loop
                        // and a client still streaming must not stall
                        // every live connection. If the socket cannot
                        // even be made nonblocking, just drop it.
                        if stream.set_nonblocking(true).is_ok() {
                            let mut scratch = [0u8; 16 * 1024];
                            let _ = stream.read(&mut scratch);
                            let mut out = Vec::new();
                            over_budget_response().serialize_into(&mut out, true);
                            let _ = stream.write(&out);
                        }
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.dispatch_accepted(stream, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => {
                    // Transient accept errors (aborted handshake, EMFILE
                    // under fd pressure) shed the connection and keep
                    // serving; a long unbroken run means the listener is
                    // dead — exit so a supervisor can restart us.
                    self.accept_failures += 1;
                    if self.accept_failures >= MAX_ACCEPT_FAILURES {
                        return Err(e);
                    }
                    let err = e.to_string();
                    logger().log(Level::Warn, "reactor", "accept failed", &[("error", &err)]);
                    return Ok(()); // re-armed by level-triggered epoll
                }
            }
        }
        Ok(())
    }

    /// Routes a freshly accepted (already nonblocking) socket to a
    /// shard: round-robin over self + the listener-less siblings when
    /// running in handoff mode, straight to self otherwise.
    // audit: no_panic
    fn dispatch_accepted(&mut self, stream: TcpStream, now: Instant) {
        if self.peers.is_empty() {
            self.register_conn(stream, now);
            return;
        }
        let targets = 1 + self.peers.len();
        let target = self.rr % targets;
        self.rr = (self.rr + 1) % targets;
        if target == 0 {
            self.register_conn(stream, now);
        } else {
            let peer = &self.peers[target - 1];
            peer.inbox.lock().unwrap_or_else(|e| e.into_inner()).push(stream);
            peer.waker.wake();
        }
    }

    /// Adopts sockets a sibling shard accepted on this shard's behalf.
    fn drain_inbox(&mut self, now: Instant) {
        loop {
            let Some(stream) = self.inbox.lock().unwrap_or_else(|e| e.into_inner()).pop() else {
                return;
            };
            self.register_conn(stream, now);
        }
    }

    /// Registers a nonblocking socket with this shard's epoll and slab.
    fn register_conn(&mut self, stream: TcpStream, now: Instant) {
        let idx = self.alloc_slot();
        let gen = self.gens[idx as usize];
        let interest = EPOLLIN | EPOLLRDHUP;
        // Connections are edge-triggered: the read/write paths drain to
        // EAGAIN, and interest changes go through `epoll_ctl(MOD)`,
        // which re-delivers an edge for already-pending readiness.
        if self.ep.add(stream.as_raw_fd(), interest | EPOLLET, token(idx, gen)).is_err() {
            self.free.push(idx);
            return; // stream drops → closed
        }
        let deadline = now + self.ctx.cfg.idle_timeout;
        self.conns[idx as usize] = Some(Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            wqueue: VecDeque::new(),
            wpos: 0,
            served: 0,
            interest,
            waiting: false,
            close_after_flush: false,
            peer_eof: false,
            deadline,
            timer_seq: 0,
            armed_for: deadline,
            t_first: 0,
            t_head: 0,
        });
        self.ctx.stats.conn_opened();
        self.stats.accepted.inc();
        // The one live wheel entry this connection has; it re-arms
        // itself against `deadline` until close.
        self.wheel.schedule(now, deadline, (idx, gen, 0));
        // A handed-off socket may already hold a request; the MOD-free
        // initial registration delivers the pending-read edge, but only
        // for bytes that arrived before `epoll_ctl(ADD)`. Reading once
        // now closes the window for bytes that landed in between.
        self.readable(idx, now);
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.conns.push(None);
            self.gens.push(0);
            (self.conns.len() - 1) as u32
        }
    }

    fn close_conn(&mut self, idx: u32) {
        if let Some(conn) = self.conns[idx as usize].take() {
            let _ = self.ep.delete(conn.stream.as_raw_fd());
            // Invalidate in-flight events, timers and completions.
            self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
            self.free.push(idx);
            self.ctx.stats.conn_closed();
        }
    }

    // ------------------------ event dispatch -------------------------

    // audit: no_alloc
    // audit: no_panic
    fn conn_event(&mut self, tok: u64, bits: u32, now: Instant) {
        let idx = (tok & u64::from(u32::MAX)) as u32;
        let gen = (tok >> 32) as u32;
        let Some(conn) = self.conns.get(idx as usize).and_then(|c| c.as_ref()) else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(idx, now);
        } else if bits & EPOLLOUT != 0 {
            // `readable` ends in `sync`, which already flushes; only a
            // pure write-readiness event needs an explicit pass.
            self.sync(idx, now);
        }
    }

    /// Pulls everything the socket has — to EOF or `EAGAIN`, as
    /// edge-triggered registration demands — feeds the parser/router,
    /// and flushes the burst's responses in one `writev`. Growth stays
    /// bounded: one pass reads at most the socket receive buffer, and
    /// a scoring request drops read interest until its completion.
    fn readable(&mut self, idx: u32, now: Instant) {
        let mut chunk = [0u8; 16 * 1024];
        let mut eof = false;
        let mut fatal = false;
        {
            let Some(conn) = self.conns[idx as usize].as_mut() else { return };
            if conn.waiting || conn.close_after_flush || conn.peer_eof {
                // Read interest is off in these states; the resume path
                // re-arms through `epoll_ctl(MOD)`, which re-delivers
                // the edge for anything still pending.
                return;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.t_first == 0 {
                            conn.t_first = now_ns();
                        }
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
        }
        if fatal {
            self.close_conn(idx);
            return;
        }
        self.process(idx);
        if eof {
            if let Some(conn) = self.conns[idx as usize].as_mut() {
                // The truncated-request 400 an EOF mid-request earns is
                // issued by `sync` — which also runs after an in-flight
                // score completes, so the answer is not lost when the
                // EOF lands while a scoring request is still out.
                conn.peer_eof = true;
            }
        }
        self.sync(idx, now);
    }

    /// Parses and routes every complete request sitting in the read
    /// buffer. Cheap endpoints respond inline (queued on the write
    /// queue); a scoring request pauses the connection until its pool
    /// completion arrives. Stops early when a response demanded close.
    fn process(&mut self, idx: u32) {
        let completions = &self.completions;
        let waker = &self.waker;
        let ctx = &self.ctx;
        let Some(conn) = self.conns[idx as usize].as_mut() else { return };
        // Consumed bytes are tracked as an offset and drained ONCE when
        // the loop exits — draining per request would memmove the rest
        // of the buffer for every request of a pipelined burst, O(n²)
        // on the event-loop thread.
        let mut rpos = 0usize;
        while !conn.waiting && !conn.close_after_flush {
            match parse_request(&conn.rbuf[rpos..]) {
                Parse::Partial { head_complete } => {
                    if head_complete && conn.t_head == 0 {
                        conn.t_head = now_ns();
                    }
                    break;
                }
                Parse::Bad(msg) => {
                    Response::error(400, "Bad Request", &msg).queue_into(&mut conn.wqueue, true);
                    conn.close_after_flush = true;
                }
                Parse::Unsupported(msg) => {
                    Response::error(501, "Not Implemented", &msg)
                        .queue_into(&mut conn.wqueue, true);
                    conn.close_after_flush = true;
                }
                Parse::Complete { request, consumed } => {
                    rpos += consumed;
                    conn.served += 1;
                    let t_parsed = now_ns();
                    let mut timer = RequestTimer::start(if conn.t_first != 0 {
                        conn.t_first
                    } else {
                        t_parsed
                    });
                    if conn.t_first != 0 {
                        let head_done = if conn.t_head != 0 { conn.t_head } else { t_parsed };
                        timer.add(Stage::HeadRead, head_done.saturating_sub(conn.t_first));
                        timer.add(Stage::BodyRead, t_parsed.saturating_sub(head_done));
                    }
                    // The next pipelined request (if buffered) starts now.
                    conn.t_first = t_parsed;
                    conn.t_head = 0;
                    // Close after this response if the client asked for
                    // it, the per-connection request budget is spent, or
                    // the server is shutting down.
                    let close = !request.keep_alive
                        || conn.served >= ctx.cfg.max_requests_per_conn
                        || ctx.stop.is_stopped();
                    let route_ctx = RouteCtx { registry: &ctx.registry, stats: &ctx.stats };
                    let routed = route(&request, &route_ctx);
                    timer.add(Stage::Parse, now_ns().saturating_sub(t_parsed));
                    match routed {
                        Routed::Ready(response) => {
                            let t_ser = now_ns();
                            let status = response.status;
                            response.queue_into(&mut conn.wqueue, close);
                            timer.add(Stage::Serialize, now_ns().saturating_sub(t_ser));
                            timer.finish(status);
                            if close {
                                conn.close_after_flush = true;
                            }
                        }
                        Routed::Score(task) => {
                            conn.waiting = true;
                            let completions = Arc::clone(completions);
                            let waker = Arc::clone(waker);
                            let gen = conn.gen;
                            task.run_async(
                                timer,
                                Box::new(move |response, timer| {
                                    completions
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .push(Completion { idx, gen, response, close, timer });
                                    waker.wake();
                                }),
                            );
                        }
                    }
                }
            }
        }
        conn.rbuf.drain(..rpos);
        if conn.rbuf.is_empty() {
            // No partial request pending: the next request's first-byte
            // clock starts at its actual read.
            conn.t_first = 0;
            conn.t_head = 0;
        }
    }

    /// Applies finished scoring responses, resumes parsing of any
    /// pipelined requests that queued up behind them, and flushes.
    fn drain_completions(&mut self) {
        let pending =
            std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()));
        let now = Instant::now();
        for Completion { idx, gen, response, close, mut timer } in pending {
            {
                let Some(conn) = self.conns.get_mut(idx as usize).and_then(|c| c.as_mut()) else {
                    continue; // connection died while scoring
                };
                if conn.gen != gen {
                    continue;
                }
                conn.waiting = false;
                let t_ser = now_ns();
                let status = response.status;
                response.queue_into(&mut conn.wqueue, close);
                timer.add(Stage::Serialize, now_ns().saturating_sub(t_ser));
                timer.finish(status);
                if close {
                    conn.close_after_flush = true;
                }
            }
            if !close {
                self.process(idx);
            }
            self.sync(idx, now);
        }
    }

    /// Flushes what the socket will take, closes if the connection is
    /// finished, and reconciles epoll interest and the deadline with
    /// the connection's state.
    fn sync(&mut self, idx: u32, now: Instant) {
        {
            let Some(conn) = self.conns[idx as usize].as_mut() else { return };
            // A half-closed peer with leftover unparseable bytes sent a
            // truncated request: answer it best-effort before closing,
            // exactly like the threaded backend. This runs after
            // `process`, so the leftovers are genuinely partial — and
            // runs again once an in-flight score completes, so the
            // answer is not lost when the EOF landed mid-score.
            if conn.peer_eof && !conn.waiting && !conn.close_after_flush && !conn.rbuf.is_empty() {
                truncated_response().queue_into(&mut conn.wqueue, true);
                conn.close_after_flush = true;
                conn.rbuf.clear();
            }
        }
        if !self.flush(idx) {
            return; // closed (fully drained + close_after_flush, or error)
        }
        let Some(conn) = self.conns[idx as usize].as_mut() else { return };
        // A half-closed peer with nothing in flight can never produce
        // another request: close as soon as output drains.
        if conn.peer_eof && !conn.waiting && conn.flushed() {
            self.close_conn(idx);
            return;
        }
        let mut want = 0;
        if !conn.waiting && !conn.close_after_flush && !conn.peer_eof {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !conn.flushed() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            // MOD re-evaluates readiness under EPOLLET and delivers a
            // fresh edge for anything already pending — this is what
            // resumes a connection whose reads paused during scoring.
            let _ = self.ep.modify(conn.stream.as_raw_fd(), want | EPOLLET, token(idx, conn.gen));
        }
        // Deadline: the strict io timeout while anything is mid-flight
        // (partial request, unflushed output, in-flight score), the lax
        // idle timeout between requests. A deadline moving later is
        // picked up lazily when the armed entry fires; one moving
        // *earlier* (idle → io on the first bytes of a request) must
        // supersede the armed entry now, or a slow-loris would enjoy
        // the idle grace period.
        let busy = conn.waiting || !conn.flushed() || !conn.rbuf.is_empty();
        let timeout = if busy { self.ctx.cfg.io_timeout } else { self.ctx.cfg.idle_timeout };
        conn.deadline = now + timeout;
        if conn.deadline < conn.armed_for {
            conn.timer_seq = conn.timer_seq.wrapping_add(1);
            conn.armed_for = conn.deadline;
            self.wheel.schedule(now, conn.deadline, (idx, conn.gen, conn.timer_seq));
        }
    }

    /// Writes as much of the pending output as the socket accepts,
    /// gathering up to [`MAX_IOV`] queued chunks per `writev` — a
    /// pipelined burst of responses leaves in O(1) syscalls — and
    /// always running to `EAGAIN` (or empty), as edge-triggered
    /// registration demands. Returns `false` if the connection was
    /// closed (finished or failed).
    // audit: no_alloc
    // audit: no_panic
    fn flush(&mut self, idx: u32) -> bool {
        let mut close = false;
        {
            let Some(conn) = self.conns[idx as usize].as_mut() else { return false };
            let close_after_flush = conn.close_after_flush;
            let Conn { stream, wqueue, wpos, .. } = conn;
            let had_pending = !wqueue.is_empty();
            let t_flush = if had_pending { now_ns() } else { 0 };
            while !wqueue.is_empty() {
                let mut iov = [IoSlice::new(&[]); MAX_IOV];
                let mut n_iov = 0;
                for (i, chunk) in wqueue.iter().enumerate() {
                    if n_iov == MAX_IOV {
                        break;
                    }
                    iov[n_iov] = IoSlice::new(if i == 0 { &chunk[*wpos..] } else { &chunk[..] });
                    n_iov += 1;
                }
                match stream.write_vectored(&iov[..n_iov]) {
                    Ok(0) => break,
                    Ok(mut n) => {
                        // Consume `n` across the queue: fully written
                        // front chunks pop (and free), a partial write
                        // leaves its offset in `wpos`.
                        while n > 0 {
                            let front_len = wqueue.front().map(|c| c.len()).unwrap_or(0);
                            let remaining = front_len - *wpos;
                            if n >= remaining {
                                n -= remaining;
                                wqueue.pop_front();
                                *wpos = 0;
                            } else {
                                *wpos += n;
                                n = 0;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true; // peer reset mid-response
                        break;
                    }
                }
            }
            if had_pending {
                metrics().record_stage(Stage::WriteFlush, now_ns().saturating_sub(t_flush));
            }
            if !close && wqueue.is_empty() {
                *wpos = 0;
                close = close_after_flush;
            }
        }
        if close {
            self.close_conn(idx);
            return false;
        }
        true
    }

    // --------------------------- timers ------------------------------

    /// A wheel entry fired. Entries are lazy: a stale sequence means a
    /// newer entry superseded this one (drop it); otherwise re-arm if
    /// the authoritative deadline moved later or the connection is
    /// waiting on the pool (the pool bounds scoring latency, not the
    /// socket timeout); otherwise the connection is genuinely overdue.
    fn timer_fired(&mut self, idx: u32, gen: u32, seq: u32, now: Instant) {
        let verdict = {
            let Some(conn) = self.conns.get(idx as usize).and_then(|c| c.as_ref()) else {
                return; // stale entry for a freed slot
            };
            if conn.gen != gen || conn.timer_seq != seq {
                return; // superseded by a newer, earlier arm
            }
            if conn.waiting {
                // Never reap a connection the pool still owes a
                // response; re-check one io-timeout later.
                Some(now + self.ctx.cfg.io_timeout)
            } else if now < conn.deadline {
                Some(conn.deadline)
            } else {
                None
            }
        };
        match verdict {
            Some(rearm_at) => {
                let conn = self.conns[idx as usize].as_mut().expect("checked above");
                conn.timer_seq = conn.timer_seq.wrapping_add(1);
                conn.armed_for = rearm_at;
                self.wheel.schedule(now, rearm_at, (idx, gen, conn.timer_seq));
            }
            None => {
                // Overdue. A request stalled mid-transfer (slow-loris)
                // gets the best-effort 408 the threaded backend sends;
                // idle or write-stalled connections just close.
                let conn = self.conns[idx as usize].as_mut().expect("checked above");
                if !conn.rbuf.is_empty() && conn.flushed() {
                    let mut out = Vec::new();
                    stalled_response().serialize_into(&mut out, true);
                    let _ = conn.stream.write(&out); // single nonblocking try
                }
                self.close_conn(idx);
            }
        }
    }
}
