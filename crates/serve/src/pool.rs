//! Fixed-size worker pool sharding score batches across cores.
//!
//! The ensemble forward pass is embarrassingly parallel across rows:
//! every score depends only on its own row (standardisation, matmuls and
//! calibration are all per-row), so a batch can be cut into shards,
//! scored on any worker in any order, and reassembled by shard index
//! with **bit-identical** results to a serial pass — the property the
//! shard-independence test in `tests/server.rs` pins down.
//!
//! Workers are `std::thread`s living as long as the pool, pulling jobs
//! from a shared queue (work stealing via `Mutex<Receiver>`); each job
//! carries its own reply channel, so concurrent [`ScoringPool::score`]
//! calls from different HTTP connections interleave safely.

use crate::model::{ScoreError, ServedModel};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use uadb_linalg::Matrix;

/// Pool sizing.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count (0 = one per available core).
    pub workers: usize,
    /// Maximum rows per shard; batches smaller than this stay on one
    /// worker, larger ones fan out.
    pub shard_rows: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 0, shard_rows: 256 }
    }
}

impl PoolConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
        }
    }
}

struct Job {
    shard_idx: usize,
    rows: Matrix,
    reply: Sender<(usize, Result<Vec<f64>, ScoreError>)>,
}

/// A fixed pool of scoring workers over one loaded model.
pub struct ScoringPool {
    model: Arc<ServedModel>,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shard_rows: usize,
}

impl ScoringPool {
    /// Spawns the workers.
    pub fn new(model: Arc<ServedModel>, cfg: PoolConfig) -> Self {
        let n_workers = cfg.effective_workers();
        let shard_rows = cfg.shard_rows.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("uadb-score-{i}"))
                    .spawn(move || worker_loop(&model, &rx))
                    .expect("spawn scoring worker")
            })
            .collect();
        Self { model, queue: Some(tx), workers, shard_rows }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The model this pool scores with.
    pub fn model(&self) -> &Arc<ServedModel> {
        &self.model
    }

    /// Scores raw rows, sharded across the pool. Output order matches
    /// input order and is independent of worker count and scheduling.
    ///
    /// # Panics
    /// If a worker thread died (a scoring panic), which is a bug, not a
    /// request-level condition.
    pub fn score(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        let n = raw.rows();
        if n == 0 {
            // Preserve the model's validation semantics on empty input.
            return self.model.score_rows(raw);
        }
        // Even a single-shard batch goes through the queue: the fixed
        // worker set is what bounds CPU concurrency, and scoring on the
        // calling thread would let N concurrent small requests run N
        // simultaneous forward passes.
        let n_shards = n.div_ceil(self.shard_rows);
        let queue = self.queue.as_ref().expect("pool not shut down");
        let (reply_tx, reply_rx) = channel();
        for shard_idx in 0..n_shards {
            let lo = shard_idx * self.shard_rows;
            let hi = (lo + self.shard_rows).min(n);
            let indices: Vec<usize> = (lo..hi).collect();
            let job = Job { shard_idx, rows: raw.select_rows(&indices), reply: reply_tx.clone() };
            queue.send(job).expect("scoring workers alive");
        }
        drop(reply_tx);
        let mut shards: Vec<Option<Vec<f64>>> = vec![None; n_shards];
        let mut received = 0;
        while let Ok((idx, result)) = reply_rx.recv() {
            // Shards see only their own rows; lift error indices back to
            // batch-global coordinates before surfacing them.
            shards[idx] = Some(result.map_err(|e| match e {
                ScoreError::NonFiniteFeature { row } => {
                    ScoreError::NonFiniteFeature { row: row + idx * self.shard_rows }
                }
                other => other,
            })?);
            received += 1;
        }
        assert_eq!(received, n_shards, "a scoring worker died mid-batch");
        let mut out = Vec::with_capacity(n);
        for shard in shards {
            out.extend(shard.expect("all shards received"));
        }
        Ok(out)
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(model: &ServedModel, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only to pull one job; scoring runs
        // unlocked so workers overlap.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(Job { shard_idx, rows, reply }) => {
                // A dropped reply receiver (caller bailed on an earlier
                // shard error) is fine — discard.
                let _ = reply.send((shard_idx, model.score_rows(&rows)));
            }
            Err(_) => return, // Pool dropped.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::tiny_model;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    #[test]
    fn pool_output_matches_serial_bit_for_bit() {
        let model = Arc::new(tiny_model(20));
        let data = fig5_dataset(AnomalyType::Local, 20);
        let serial = model.score_rows(&data.x).unwrap();
        // Tiny shards force multi-shard paths; vary worker counts.
        for workers in [1, 2, 4] {
            let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers, shard_rows: 7 });
            let pooled = pool.score(&data.x).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} with {workers} workers");
            }
        }
    }

    #[test]
    fn errors_propagate_from_shards() {
        let model = Arc::new(tiny_model(21));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 4 });
        let mut bad = Matrix::zeros(10, model.input_dim());
        bad.set(9, 0, f64::INFINITY); // lands in the last shard
                                      // The reported row index is batch-global, not shard-local.
        assert_eq!(pool.score(&bad), Err(ScoreError::NonFiniteFeature { row: 9 }));
        let wrong_width = Matrix::zeros(10, model.input_dim() + 2);
        assert!(matches!(pool.score(&wrong_width), Err(ScoreError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_batch_and_shutdown() {
        let model = Arc::new(tiny_model(22));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig::default());
        assert_eq!(pool.score(&Matrix::zeros(0, 0)).unwrap(), Vec::<f64>::new());
        assert!(pool.n_workers() >= 1);
        drop(pool); // must join cleanly, not hang
    }
}
