//! Fixed-size worker pool sharding score batches across cores.
//!
//! The ensemble forward pass is embarrassingly parallel across rows:
//! every score depends only on its own row (standardisation, matmuls and
//! calibration are all per-row), so a batch can be cut into shards,
//! scored on any worker in any order, and reassembled by shard index
//! with **bit-identical** results to a serial pass — the property the
//! shard-independence test in `tests/server.rs` pins down.
//!
//! Workers are `std::thread`s living as long as the pool, pulling jobs
//! from a shared queue (work stealing via `Mutex<Receiver>`); each job
//! carries a shared batch-completion state, so concurrent requests from
//! different HTTP connections interleave safely.
//!
//! Completion is **callback-driven**: the last shard to finish invokes
//! the batch's completion callback on its worker thread. The blocking
//! [`ScoringPool::score_shared_variant`] wraps that in a channel wait;
//! the epoll reactor instead passes a callback that enqueues the result
//! and writes its wakeup pipe ([`ScoringPool::submit`]), so scoring
//! never blocks the event loop.
//!
//! Allocation discipline: a job *borrows* its row range from the
//! request batch (one shared `Arc<Matrix>`, no per-shard copy), each
//! worker owns a persistent [`ScoreWorkspace`] reused across jobs, and
//! every shard writes its scores into a disjoint range of one
//! preallocated output vector — on the **booster** variant, steady
//! state allocates nothing per request beyond the response buffer
//! itself. Teacher shards go through the frozen detector's own `score`
//! path, which allocates its staging buffers per shard (A/B traffic is
//! a comparison tool, not the production hot path).

use crate::model::{ScoreError, ScoreWorkspace, ServedModel, Variant};
use crate::telemetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use uadb_linalg::Matrix;
use uadb_telemetry::now_ns;

/// Completion callback a scoring submission fires exactly once, on
/// whichever worker thread finishes the batch's last shard (or inline,
/// for batches that never reach the queue). The [`ScoreTiming`] is the
/// batch's measured pool timings, so the HTTP layer can attribute the
/// wait to its request without any shared lookup.
pub type ScoreCallback = Box<dyn FnOnce(Result<Vec<f64>, ScoreError>, ScoreTiming) + Send>;

/// Where a batch's wall time in the pool went: sitting in the queue
/// (submission until a worker dequeued the first shard) versus being
/// scored (first dequeue until the last shard finished). Both zero for
/// batches that short-circuit without reaching the queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreTiming {
    pub queue_ns: u64,
    pub score_ns: u64,
}

/// Pool sizing.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count (0 = one per available core).
    pub workers: usize,
    /// Maximum rows per shard; batches smaller than this stay on one
    /// worker, larger ones fan out.
    pub shard_rows: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 0, shard_rows: 256 }
    }
}

impl PoolConfig {
    /// The worker count this configuration resolves to on this host:
    /// the explicit count, or one per available core. When core
    /// detection fails the fallback is 2 workers; [`ScoringPool::new`]
    /// logs that degradation instead of absorbing it silently.
    pub fn effective_workers(&self) -> usize {
        self.resolve_workers().0
    }

    /// `(worker count, detection failure)` — the second field is the
    /// error when `available_parallelism` failed and the count is the
    /// blind fallback rather than a measured value.
    fn resolve_workers(&self) -> (usize, Option<std::io::Error>) {
        if self.workers > 0 {
            return (self.workers, None);
        }
        match std::thread::available_parallelism() {
            Ok(n) => (n.get(), None),
            Err(e) => (2, Some(e)),
        }
    }
}

/// Shared per-batch completion state: the preallocated output vector,
/// the count of shards still in flight, the deterministically chosen
/// error (lowest shard low-row wins regardless of completion order),
/// and the one-shot completion callback.
struct BatchState {
    out: Mutex<Vec<f64>>,
    remaining: AtomicUsize,
    first_err: Mutex<Option<(usize, ScoreError)>>,
    done: Mutex<Option<ScoreCallback>>,
    /// When the batch hit the queue ([`now_ns`] at submission).
    submitted_ns: u64,
    /// When a worker dequeued the batch's first shard (0 = not yet).
    first_dequeue_ns: AtomicU64,
}

impl BatchState {
    fn new(n: usize, n_shards: usize, done: ScoreCallback) -> Arc<Self> {
        Arc::new(Self {
            out: Mutex::new(vec![0.0; n]),
            remaining: AtomicUsize::new(n_shards),
            first_err: Mutex::new(None),
            done: Mutex::new(Some(done)),
            submitted_ns: now_ns(),
            first_dequeue_ns: AtomicU64::new(0),
        })
    }

    /// Marks the moment a worker first picked up a shard of this batch
    /// — the end of the batch's queue wait. Relaxed CAS: only the first
    /// caller wins, later shards are already in the scoring phase.
    // audit: no_panic
    fn mark_dequeued(&self, t: u64) {
        let _ = self.first_dequeue_ns.compare_exchange(0, t, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Records one shard's outcome; the call that drops `remaining` to
    /// zero takes the callback and fires it outside every lock.
    /// Panic-free even under poison (`unwrap_or_else(into_inner)`): a
    /// completion that panicked would leak the caller's oneshot forever.
    // audit: no_panic
    fn record(&self, lo: usize, result: Result<(), ScoreError>) {
        if let Err(e) = result {
            let mut guard = self.first_err.lock().unwrap_or_else(|p| p.into_inner());
            if guard.as_ref().is_none_or(|(prev_lo, _)| lo < *prev_lo) {
                *guard = Some((lo, e));
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let done = self.done.lock().unwrap_or_else(|p| p.into_inner()).take();
            let err = self.first_err.lock().unwrap_or_else(|p| p.into_inner()).take();
            let outcome = match err {
                Some((_, e)) => Err(e),
                None => {
                    let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
                    Ok(std::mem::take(&mut *out))
                }
            };
            if let Some(done) = done {
                done(outcome, self.timing());
            }
        }
    }

    fn timing(&self) -> ScoreTiming {
        let dequeued = self.first_dequeue_ns.load(Ordering::Relaxed);
        if dequeued == 0 {
            // Never reached a worker (e.g. queue torn down): everything
            // was queue wait.
            return ScoreTiming {
                queue_ns: now_ns().saturating_sub(self.submitted_ns),
                score_ns: 0,
            };
        }
        ScoreTiming {
            queue_ns: dequeued.saturating_sub(self.submitted_ns),
            score_ns: now_ns().saturating_sub(dequeued),
        }
    }
}

/// One shard of a scoring request: rows `lo..hi` of the shared batch,
/// scored into the batch state's `out[lo..hi]`.
///
/// The `Drop` guard makes shard accounting panic-proof: a job dropped
/// without reporting (worker panicked mid-score, or the queue was torn
/// down with jobs still buffered) counts itself as a
/// [`ScoreError::WorkerPanicked`] failure, so the batch completes with
/// an error instead of hanging its caller forever.
struct Job {
    batch: Arc<Matrix>,
    lo: usize,
    hi: usize,
    /// Which side of the teacher/booster pair this shard scores with.
    /// Teacher shards are per-row too, so shard-independence holds for
    /// both variants.
    variant: Variant,
    state: Arc<BatchState>,
    reported: bool,
}

impl Job {
    // audit: no_panic
    fn finish(mut self, result: Result<(), ScoreError>) {
        self.reported = true;
        self.state.record(self.lo, result);
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // Every constructed shard leaves the queue-depth gauge exactly
        // once, however it dies (scored, torn down, or panicked).
        telemetry::metrics().pool_queue_depth.dec();
        if !self.reported {
            telemetry::metrics().worker_panics.inc();
            let range = format!("{}..{}", self.lo, self.hi);
            uadb_telemetry::log::logger().log(
                uadb_telemetry::Level::Error,
                "pool",
                "scoring shard lost to a worker panic",
                &[("rows", &range), ("variant", self.variant.name())],
            );
            self.state.record(self.lo, Err(ScoreError::WorkerPanicked));
        }
    }
}

/// A fixed pool of scoring workers over one loaded model.
pub struct ScoringPool {
    model: Arc<ServedModel>,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shard_rows: usize,
}

impl ScoringPool {
    /// Spawns the workers.
    pub fn new(model: Arc<ServedModel>, cfg: PoolConfig) -> Self {
        let (n_workers, detect_err) = cfg.resolve_workers();
        if let Some(e) = detect_err {
            let err = e.to_string();
            let n = n_workers.to_string();
            uadb_telemetry::log::logger().log(
                uadb_telemetry::Level::Warn,
                "pool",
                "available_parallelism failed; falling back — set PoolConfig.workers \
                 (CLI --workers) to size the pool explicitly",
                &[("error", &err), ("workers", &n)],
            );
        }
        let shard_rows = cfg.shard_rows.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("uadb-score-{i}"))
                    .spawn(move || worker_loop(&model, &rx))
                    .expect("spawn scoring worker")
            })
            .collect();
        Self { model, queue: Some(tx), workers, shard_rows }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The model this pool scores with.
    pub fn model(&self) -> &Arc<ServedModel> {
        &self.model
    }

    /// Scores raw rows, sharded across the pool. Output order matches
    /// input order and is independent of worker count and scheduling.
    ///
    /// Convenience form of [`ScoringPool::score_shared`] for callers
    /// holding a plain reference; the batch is copied once into a
    /// shared allocation (the HTTP path hands over its parsed batch
    /// and copies nothing).
    pub fn score(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        self.score_shared(&Arc::new(raw.clone()))
    }

    /// Scores a shared batch, sharded across the pool by row range —
    /// workers borrow their rows from `raw` and write into disjoint
    /// ranges of one preallocated output vector, so nothing per-shard
    /// is copied or allocated. Output order matches input order and is
    /// independent of worker count and scheduling; on error, the error
    /// of the lowest-indexed failing shard is returned regardless of
    /// completion order. A worker dying mid-batch (a scoring panic,
    /// i.e. a server bug) reports [`ScoreError::WorkerPanicked`]
    /// instead of hanging.
    pub fn score_shared(&self, raw: &Arc<Matrix>) -> Result<Vec<f64>, ScoreError> {
        self.score_shared_variant(raw, Variant::Booster)
    }

    /// [`ScoringPool::score_shared`] with an explicit teacher/booster
    /// [`Variant`]. Teacher shards run on the same fixed worker set —
    /// the pool, not the connection handler, bounds CPU concurrency for
    /// both sides of an A/B. Returns
    /// [`ScoreError::TeacherNotLoaded`] when the teacher variant is
    /// requested on a booster-only model.
    ///
    /// Blocking wrapper over [`ScoringPool::submit`].
    pub fn score_shared_variant(
        &self,
        raw: &Arc<Matrix>,
        variant: Variant,
    ) -> Result<Vec<f64>, ScoreError> {
        let (tx, rx) = channel();
        self.submit(
            raw,
            variant,
            Box::new(move |result, _timing| {
                // A dropped receiver (caller bailed) is fine — discard.
                let _ = tx.send(result);
            }),
        );
        // The callback is guaranteed to fire (the Job drop guard covers
        // even a worker panic), so a recv error can only mean the
        // sender was dropped on a dead worker's stack mid-send.
        rx.recv().unwrap_or(Err(ScoreError::WorkerPanicked))
    }

    /// Non-blocking scoring submission: shards the shared batch onto
    /// the worker queue and returns immediately; `done` fires exactly
    /// once with the assembled result, on whichever worker thread
    /// completes the last shard (or inline on the calling thread for
    /// batches that short-circuit, e.g. zero rows or a missing
    /// teacher).
    ///
    /// This is the event-loop entry point: the epoll reactor passes a
    /// callback that pushes the finished response onto its completion
    /// queue and writes its wakeup pipe, so the reactor thread never
    /// blocks on scoring.
    pub fn submit(&self, raw: &Arc<Matrix>, variant: Variant, done: ScoreCallback) {
        if variant == Variant::Teacher && self.model.teacher().is_none() {
            return done(Err(ScoreError::TeacherNotLoaded), ScoreTiming::default());
        }
        let n = raw.rows();
        if n == 0 {
            // Preserve the model's validation semantics on empty input.
            return done(
                match variant {
                    Variant::Booster => self.model.score_rows(raw),
                    Variant::Teacher => {
                        self.model.teacher().expect("checked above").score_rows(raw)
                    }
                },
                ScoreTiming::default(),
            );
        }
        // Even a single-shard batch goes through the queue: the fixed
        // worker set is what bounds CPU concurrency, and scoring on the
        // calling thread would let N concurrent small requests run N
        // simultaneous forward passes.
        let n_shards = n.div_ceil(self.shard_rows);
        let queue = self.queue.as_ref().expect("pool not shut down");
        let state = BatchState::new(n, n_shards, done);
        // Balanced by the Job drop guard, which fires exactly once per
        // shard however the shard ends.
        telemetry::metrics().pool_queue_depth.add(n_shards as i64);
        for shard_idx in 0..n_shards {
            let lo = shard_idx * self.shard_rows;
            let hi = (lo + self.shard_rows).min(n);
            let job = Job {
                batch: Arc::clone(raw),
                lo,
                hi,
                variant,
                state: Arc::clone(&state),
                reported: false,
            };
            // The receiver lives inside the worker threads; if every
            // worker has died (scoring panics — a server bug), the
            // channel is closed and the send returns the job, whose
            // drop guard records the shard as WorkerPanicked. The batch
            // then still completes with a typed error instead of
            // hanging its caller or panicking the submitting thread
            // (which may be the reactor's event loop).
            if let Err(returned) = queue.send(job) {
                drop(returned);
            }
        }
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(model: &ServedModel, rx: &Mutex<Receiver<Job>>) {
    // Lives as long as the worker: activation buffers, standardisation
    // buffer and staging scores are reused across every job.
    let mut ws = ScoreWorkspace::default();
    loop {
        // Hold the queue lock only to pull one job; scoring runs
        // unlocked so workers overlap.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                let t_dequeue = now_ns();
                job.state.mark_dequeued(t_dequeue);
                let (lo, hi) = (job.lo, job.hi);
                let result = match job.variant {
                    Variant::Booster => {
                        match model.score_range_into(&job.batch, lo, hi, &mut ws) {
                            Ok(scores) => {
                                // A poisoned output lock means another
                                // shard's copy panicked; the Job drop
                                // guard surfaces that, so just keep the
                                // data path moving.
                                let mut guard =
                                    job.state.out.lock().unwrap_or_else(|e| e.into_inner());
                                guard[lo..hi].copy_from_slice(scores);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                    Variant::Teacher => match model.teacher() {
                        Some(teacher) => match teacher.score_range(&job.batch, lo, hi) {
                            Ok(scores) => {
                                let mut guard =
                                    job.state.out.lock().unwrap_or_else(|e| e.into_inner());
                                guard[lo..hi].copy_from_slice(&scores);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        },
                        None => Err(ScoreError::TeacherNotLoaded),
                    },
                };
                let busy = now_ns().saturating_sub(t_dequeue);
                let m = telemetry::metrics();
                m.pool_shards_total.inc();
                m.pool_shard_duration.record(busy);
                m.pool_busy_ns.add(busy);
                job.finish(result);
            }
            Err(_) => return, // Pool dropped.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::tiny_model;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    #[test]
    fn pool_output_matches_serial_bit_for_bit() {
        let model = Arc::new(tiny_model(20));
        let data = fig5_dataset(AnomalyType::Local, 20);
        let serial = model.score_rows(&data.x).unwrap();
        // Tiny shards force multi-shard paths; vary worker counts.
        for workers in [1, 2, 4] {
            let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers, shard_rows: 7 });
            let pooled = pool.score(&data.x).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} with {workers} workers");
            }
        }
    }

    #[test]
    fn worker_workspaces_survive_varied_batches() {
        // One pool, many batch shapes: per-worker scratch buffers must
        // regrow/shrink without leaking state between requests.
        let model = Arc::new(tiny_model(23));
        let data = fig5_dataset(AnomalyType::Global, 23);
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 5 });
        for rows in [13usize, 1, 40, 3] {
            let idx: Vec<usize> = (0..rows).collect();
            let batch = Arc::new(data.x.select_rows(&idx));
            let serial = model.score_rows(&batch).unwrap();
            let pooled = pool.score_shared(&batch).unwrap();
            for (a, b) in pooled.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch of {rows}");
            }
        }
    }

    #[test]
    fn errors_propagate_from_shards() {
        let model = Arc::new(tiny_model(21));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 4 });
        let mut bad = Matrix::zeros(10, model.input_dim());
        bad.set(9, 0, f64::INFINITY); // lands in the last shard
                                      // The reported row index is batch-global, not shard-local.
        assert_eq!(pool.score(&bad), Err(ScoreError::NonFiniteFeature { row: 9 }));
        // With several poisoned shards the lowest row wins
        // deterministically, whatever order workers finish in.
        bad.set(2, 0, f64::NAN);
        bad.set(6, 0, f64::NAN);
        assert_eq!(pool.score(&bad), Err(ScoreError::NonFiniteFeature { row: 2 }));
        let wrong_width = Matrix::zeros(10, model.input_dim() + 2);
        assert!(matches!(pool.score(&wrong_width), Err(ScoreError::DimensionMismatch { .. })));
    }

    #[test]
    fn submit_fires_callback_without_blocking_the_caller() {
        // The async path assembles shard results exactly like the
        // blocking path, and the callback runs off the calling thread
        // for real batches.
        let model = Arc::new(tiny_model(25));
        let data = fig5_dataset(AnomalyType::Local, 25);
        let serial = model.score_rows(&data.x).unwrap();
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 9 });
        let batch = Arc::new(data.x.clone());
        let (tx, rx) = channel();
        pool.submit(
            &batch,
            Variant::Booster,
            Box::new(move |result, timing| {
                let _ =
                    tx.send((std::thread::current().name().map(str::to_string), result, timing));
            }),
        );
        let (worker_name, result, timing) = rx.recv().unwrap();
        let scores = result.unwrap();
        assert_eq!(scores.len(), serial.len());
        for (i, (a, b)) in scores.iter().zip(&serial).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        // Real batches complete on a pool worker, not the caller.
        assert!(
            worker_name.as_deref().is_some_and(|n| n.starts_with("uadb-score-")),
            "callback ran on {worker_name:?}"
        );
        // A batch that went through the queue reports where its wall
        // time went.
        assert!(timing.score_ns > 0, "scored batches measure scoring time");
        // Short-circuit paths (empty batch, missing teacher) complete
        // inline, still fire exactly once, and report zero pool time.
        let (tx, rx) = channel();
        pool.submit(
            &Arc::new(Matrix::zeros(0, 0)),
            Variant::Booster,
            Box::new(move |r, t| {
                let _ = tx.send((r, t));
            }),
        );
        let (r, t) = rx.recv().unwrap();
        assert_eq!(r.unwrap(), Vec::<f64>::new());
        assert_eq!(t, ScoreTiming::default());
        let (tx, rx) = channel();
        pool.submit(
            &batch,
            Variant::Teacher,
            Box::new(move |r, _| {
                let _ = tx.send(r);
            }),
        );
        assert_eq!(rx.recv().unwrap(), Err(ScoreError::TeacherNotLoaded));
    }

    #[test]
    fn teacher_variant_matches_serial_bit_for_bit_and_404s_when_absent() {
        use uadb::UadbConfig;
        use uadb_detectors::DetectorKind;

        let data = fig5_dataset(AnomalyType::Clustered, 24);
        let (served, _) = crate::model::ServedModel::train_with_teacher(
            &data,
            DetectorKind::Hbos,
            UadbConfig::fast_for_tests(24),
        )
        .unwrap();
        let model = Arc::new(served);
        let serial = model.teacher().unwrap().score_rows(&data.x).unwrap();
        for workers in [1, 3] {
            let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers, shard_rows: 7 });
            let pooled =
                pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Teacher).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} with {workers} workers");
            }
            // The booster variant still scores the booster.
            let boosted =
                pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Booster).unwrap();
            assert_eq!(boosted, model.score_rows(&data.x).unwrap());
        }
        // A booster-only model reports the teacher as unavailable.
        let bare = Arc::new(tiny_model(24));
        let pool = ScoringPool::new(bare, PoolConfig::default());
        assert_eq!(
            pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Teacher),
            Err(ScoreError::TeacherNotLoaded)
        );
    }

    #[test]
    fn empty_batch_and_shutdown() {
        let model = Arc::new(tiny_model(22));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig::default());
        assert_eq!(pool.score(&Matrix::zeros(0, 0)).unwrap(), Vec::<f64>::new());
        assert!(pool.n_workers() >= 1);
        assert_eq!(pool.n_workers(), PoolConfig::default().effective_workers());
        drop(pool); // must join cleanly, not hang
    }
}
