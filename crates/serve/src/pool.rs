//! Fixed-size worker pool sharding score batches across cores.
//!
//! The ensemble forward pass is embarrassingly parallel across rows:
//! every score depends only on its own row (standardisation, matmuls and
//! calibration are all per-row), so a batch can be cut into shards,
//! scored on any worker in any order, and reassembled by shard index
//! with **bit-identical** results to a serial pass — the property the
//! shard-independence test in `tests/server.rs` pins down.
//!
//! Workers are `std::thread`s living as long as the pool, pulling jobs
//! from a shared queue (work stealing via `Mutex<Receiver>`); each job
//! carries its own reply channel, so concurrent [`ScoringPool::score`]
//! calls from different HTTP connections interleave safely.
//!
//! Allocation discipline: a job *borrows* its row range from the
//! request batch (one shared `Arc<Matrix>`, no per-shard copy), each
//! worker owns a persistent [`ScoreWorkspace`] reused across jobs, and
//! every shard writes its scores into a disjoint range of one
//! preallocated output vector — on the **booster** variant, steady
//! state allocates nothing per request beyond the response buffer
//! itself. Teacher shards go through the frozen detector's own `score`
//! path, which allocates its staging buffers per shard (A/B traffic is
//! a comparison tool, not the production hot path).

use crate::model::{ScoreError, ScoreWorkspace, ServedModel, Variant};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use uadb_linalg::Matrix;

/// Pool sizing.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count (0 = one per available core).
    pub workers: usize,
    /// Maximum rows per shard; batches smaller than this stay on one
    /// worker, larger ones fan out.
    pub shard_rows: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 0, shard_rows: 256 }
    }
}

impl PoolConfig {
    /// The worker count this configuration resolves to on this host:
    /// the explicit count, or one per available core. When core
    /// detection fails the fallback is 2 workers; [`ScoringPool::new`]
    /// logs that degradation instead of absorbing it silently.
    pub fn effective_workers(&self) -> usize {
        self.resolve_workers().0
    }

    /// `(worker count, detection failure)` — the second field is the
    /// error when `available_parallelism` failed and the count is the
    /// blind fallback rather than a measured value.
    fn resolve_workers(&self) -> (usize, Option<std::io::Error>) {
        if self.workers > 0 {
            return (self.workers, None);
        }
        match std::thread::available_parallelism() {
            Ok(n) => (n.get(), None),
            Err(e) => (2, Some(e)),
        }
    }
}

/// One shard of a scoring request: rows `lo..hi` of the shared batch,
/// scored into `out[lo..hi]`.
struct Job {
    batch: Arc<Matrix>,
    lo: usize,
    hi: usize,
    /// Which side of the teacher/booster pair this shard scores with.
    /// Teacher shards are per-row too, so shard-independence holds for
    /// both variants.
    variant: Variant,
    out: Arc<Mutex<Vec<f64>>>,
    /// Reports the shard's low row (for deterministic error selection)
    /// and its outcome.
    reply: Sender<(usize, Result<(), ScoreError>)>,
}

/// A fixed pool of scoring workers over one loaded model.
pub struct ScoringPool {
    model: Arc<ServedModel>,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shard_rows: usize,
}

impl ScoringPool {
    /// Spawns the workers.
    pub fn new(model: Arc<ServedModel>, cfg: PoolConfig) -> Self {
        let (n_workers, detect_err) = cfg.resolve_workers();
        if let Some(e) = detect_err {
            eprintln!(
                "uadb-serve: available_parallelism failed ({e}); \
                 falling back to {n_workers} scoring workers — set \
                 PoolConfig.workers (CLI --workers) to size the pool explicitly"
            );
        }
        let shard_rows = cfg.shard_rows.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("uadb-score-{i}"))
                    .spawn(move || worker_loop(&model, &rx))
                    .expect("spawn scoring worker")
            })
            .collect();
        Self { model, queue: Some(tx), workers, shard_rows }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The model this pool scores with.
    pub fn model(&self) -> &Arc<ServedModel> {
        &self.model
    }

    /// Scores raw rows, sharded across the pool. Output order matches
    /// input order and is independent of worker count and scheduling.
    ///
    /// Convenience form of [`ScoringPool::score_shared`] for callers
    /// holding a plain reference; the batch is copied once into a
    /// shared allocation (the HTTP path hands over its parsed batch
    /// and copies nothing).
    pub fn score(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        self.score_shared(&Arc::new(raw.clone()))
    }

    /// Scores a shared batch, sharded across the pool by row range —
    /// workers borrow their rows from `raw` and write into disjoint
    /// ranges of one preallocated output vector, so nothing per-shard
    /// is copied or allocated. Output order matches input order and is
    /// independent of worker count and scheduling; on error, the error
    /// of the lowest-indexed failing shard is returned regardless of
    /// completion order.
    ///
    /// # Panics
    /// If a worker thread died (a scoring panic), which is a bug, not a
    /// request-level condition.
    pub fn score_shared(&self, raw: &Arc<Matrix>) -> Result<Vec<f64>, ScoreError> {
        self.score_shared_variant(raw, Variant::Booster)
    }

    /// [`ScoringPool::score_shared`] with an explicit teacher/booster
    /// [`Variant`]. Teacher shards run on the same fixed worker set —
    /// the pool, not the connection handler, bounds CPU concurrency for
    /// both sides of an A/B. Returns
    /// [`ScoreError::TeacherNotLoaded`] when the teacher variant is
    /// requested on a booster-only model.
    pub fn score_shared_variant(
        &self,
        raw: &Arc<Matrix>,
        variant: Variant,
    ) -> Result<Vec<f64>, ScoreError> {
        if variant == Variant::Teacher && self.model.teacher().is_none() {
            return Err(ScoreError::TeacherNotLoaded);
        }
        let n = raw.rows();
        if n == 0 {
            // Preserve the model's validation semantics on empty input.
            return match variant {
                Variant::Booster => self.model.score_rows(raw),
                Variant::Teacher => self.model.teacher().expect("checked above").score_rows(raw),
            };
        }
        // Even a single-shard batch goes through the queue: the fixed
        // worker set is what bounds CPU concurrency, and scoring on the
        // calling thread would let N concurrent small requests run N
        // simultaneous forward passes.
        let n_shards = n.div_ceil(self.shard_rows);
        let queue = self.queue.as_ref().expect("pool not shut down");
        let out = Arc::new(Mutex::new(vec![0.0; n]));
        let (reply_tx, reply_rx) = channel();
        for shard_idx in 0..n_shards {
            let lo = shard_idx * self.shard_rows;
            let hi = (lo + self.shard_rows).min(n);
            let job = Job {
                batch: Arc::clone(raw),
                lo,
                hi,
                variant,
                out: Arc::clone(&out),
                reply: reply_tx.clone(),
            };
            queue.send(job).expect("scoring workers alive");
        }
        drop(reply_tx);
        // Drain every shard before deciding the outcome so the reported
        // error does not depend on scheduling order.
        let mut received = 0;
        let mut first_err: Option<(usize, ScoreError)> = None;
        while let Ok((lo, result)) = reply_rx.recv() {
            received += 1;
            if let Err(e) = result {
                if first_err.as_ref().is_none_or(|(prev_lo, _)| lo < *prev_lo) {
                    first_err = Some((lo, e));
                }
            }
        }
        assert_eq!(received, n_shards, "a scoring worker died mid-batch");
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        // Workers may still hold their `Arc` clones for an instant
        // after replying; move the buffer out under the lock instead of
        // waiting for the reference count to settle.
        let mut guard = out.lock().unwrap_or_else(|e| e.into_inner());
        Ok(std::mem::take(&mut *guard))
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.queue.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(model: &ServedModel, rx: &Mutex<Receiver<Job>>) {
    // Lives as long as the worker: activation buffers, standardisation
    // buffer and staging scores are reused across every job.
    let mut ws = ScoreWorkspace::default();
    loop {
        // Hold the queue lock only to pull one job; scoring runs
        // unlocked so workers overlap.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(Job { batch, lo, hi, variant, out, reply }) => {
                let result = match variant {
                    Variant::Booster => match model.score_range_into(&batch, lo, hi, &mut ws) {
                        Ok(scores) => {
                            // A poisoned output lock means another shard's
                            // copy panicked; the recv-count assert surfaces
                            // that, so just keep the data path moving.
                            let mut guard = out.lock().unwrap_or_else(|e| e.into_inner());
                            guard[lo..hi].copy_from_slice(scores);
                            Ok(())
                        }
                        Err(e) => Err(e),
                    },
                    Variant::Teacher => match model.teacher() {
                        Some(teacher) => match teacher.score_range(&batch, lo, hi) {
                            Ok(scores) => {
                                let mut guard = out.lock().unwrap_or_else(|e| e.into_inner());
                                guard[lo..hi].copy_from_slice(&scores);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        },
                        None => Err(ScoreError::TeacherNotLoaded),
                    },
                };
                // A dropped reply receiver (caller bailed) is fine —
                // discard.
                let _ = reply.send((lo, result));
            }
            Err(_) => return, // Pool dropped.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::tiny_model;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    #[test]
    fn pool_output_matches_serial_bit_for_bit() {
        let model = Arc::new(tiny_model(20));
        let data = fig5_dataset(AnomalyType::Local, 20);
        let serial = model.score_rows(&data.x).unwrap();
        // Tiny shards force multi-shard paths; vary worker counts.
        for workers in [1, 2, 4] {
            let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers, shard_rows: 7 });
            let pooled = pool.score(&data.x).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} with {workers} workers");
            }
        }
    }

    #[test]
    fn worker_workspaces_survive_varied_batches() {
        // One pool, many batch shapes: per-worker scratch buffers must
        // regrow/shrink without leaking state between requests.
        let model = Arc::new(tiny_model(23));
        let data = fig5_dataset(AnomalyType::Global, 23);
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 5 });
        for rows in [13usize, 1, 40, 3] {
            let idx: Vec<usize> = (0..rows).collect();
            let batch = Arc::new(data.x.select_rows(&idx));
            let serial = model.score_rows(&batch).unwrap();
            let pooled = pool.score_shared(&batch).unwrap();
            for (a, b) in pooled.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch of {rows}");
            }
        }
    }

    #[test]
    fn errors_propagate_from_shards() {
        let model = Arc::new(tiny_model(21));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers: 2, shard_rows: 4 });
        let mut bad = Matrix::zeros(10, model.input_dim());
        bad.set(9, 0, f64::INFINITY); // lands in the last shard
                                      // The reported row index is batch-global, not shard-local.
        assert_eq!(pool.score(&bad), Err(ScoreError::NonFiniteFeature { row: 9 }));
        // With several poisoned shards the lowest row wins
        // deterministically, whatever order workers finish in.
        bad.set(2, 0, f64::NAN);
        bad.set(6, 0, f64::NAN);
        assert_eq!(pool.score(&bad), Err(ScoreError::NonFiniteFeature { row: 2 }));
        let wrong_width = Matrix::zeros(10, model.input_dim() + 2);
        assert!(matches!(pool.score(&wrong_width), Err(ScoreError::DimensionMismatch { .. })));
    }

    #[test]
    fn teacher_variant_matches_serial_bit_for_bit_and_404s_when_absent() {
        use uadb::UadbConfig;
        use uadb_detectors::DetectorKind;

        let data = fig5_dataset(AnomalyType::Clustered, 24);
        let (served, _) = crate::model::ServedModel::train_with_teacher(
            &data,
            DetectorKind::Hbos,
            UadbConfig::fast_for_tests(24),
        )
        .unwrap();
        let model = Arc::new(served);
        let serial = model.teacher().unwrap().score_rows(&data.x).unwrap();
        for workers in [1, 3] {
            let pool = ScoringPool::new(Arc::clone(&model), PoolConfig { workers, shard_rows: 7 });
            let pooled =
                pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Teacher).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (i, (a, b)) in pooled.iter().zip(&serial).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} with {workers} workers");
            }
            // The booster variant still scores the booster.
            let boosted =
                pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Booster).unwrap();
            assert_eq!(boosted, model.score_rows(&data.x).unwrap());
        }
        // A booster-only model reports the teacher as unavailable.
        let bare = Arc::new(tiny_model(24));
        let pool = ScoringPool::new(bare, PoolConfig::default());
        assert_eq!(
            pool.score_shared_variant(&Arc::new(data.x.clone()), Variant::Teacher),
            Err(ScoreError::TeacherNotLoaded)
        );
    }

    #[test]
    fn empty_batch_and_shutdown() {
        let model = Arc::new(tiny_model(22));
        let pool = ScoringPool::new(Arc::clone(&model), PoolConfig::default());
        assert_eq!(pool.score(&Matrix::zeros(0, 0)).unwrap(), Vec::<f64>::new());
        assert!(pool.n_workers() >= 1);
        assert_eq!(pool.n_workers(), PoolConfig::default().effective_workers());
        drop(pool); // must join cleanly, not hang
    }
}
