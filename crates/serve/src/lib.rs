//! # uadb-serve — model persistence and batch-scoring server
//!
//! Takes a fitted [`uadb::UadbModel`] from training to production, the
//! deployment shape the paper implies (§III: the distilled student
//! *replaces* the teacher as the serving detector):
//!
//! 1. **Persistence** — [`persist`] writes a self-describing versioned
//!    binary format (magic + version + config + per-layer weights + the
//!    train-time standardisation and calibration constants) through any
//!    `std::io::{Read, Write}`; loads reproduce scoring bit-identically.
//! 2. **Batch scoring engine** — [`pool::ScoringPool`] shards request
//!    batches across a fixed `std::thread` worker set; per-row math makes
//!    the output independent of sharding and scheduling.
//! 3. **Scoring server + CLI** — [`http::Server`] speaks HTTP/1.1 with
//!    **persistent connections** (keep-alive, idle timeout, bounded
//!    connection budget, pipelined-burst batched writes), routing `POST
//!    /score[/{name}]`, `GET /model[/{name}]`, `GET /models`, `POST
//!    /admin/reload/{name}`, `POST`/`DELETE /admin/teacher/{name}`,
//!    `GET /healthz`, `GET /metrics` (Prometheus text exposition from
//!    the process-global [`telemetry`] plane) and `GET /admin/slow`
//!    (the last captured slow requests); the `uadb-serve` binary wires
//!    `train`/`score`/`serve`/`info` subcommands to the existing
//!    teachers and datasets. Request parsing and response
//!    serialization are **sans-io** functions over byte buffers,
//!    driven by one of two interchangeable [`http::ConnectionDriver`]
//!    backends: classic thread-per-connection
//!    ([`http::IoMode::Threads`]), or the [`reactor`] — a
//!    single-threaded **epoll** readiness loop (Linux default,
//!    `serve --io epoll`) that owns every client socket, so the
//!    connection budget scales past thread counts.
//! 4. **Multi-model routing** — [`registry::ModelRegistry`] holds N
//!    named models, each with its own pool, behind one port, with
//!    atomic hot reload that never drops in-flight connections.
//! 5. **Teacher/booster A/B** — a served name can carry the *frozen
//!    fitted teacher* next to its distilled booster:
//!    [`model::TeacherModel`] wraps a detector snapshot (see
//!    `uadb_detectors::snapshot`), [`persist`] stores it as its own
//!    record type in the same versioned container, and
//!    `POST /score/{name}?variant=teacher|booster|both` serves the
//!    paper's comparison online (`both` returns paired scores for the
//!    same rows in one response).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use uadb::UadbConfig;
//! use uadb_data::synth::{fig5_dataset, AnomalyType};
//! use uadb_detectors::DetectorKind;
//! use uadb_serve::model::ServedModel;
//! use uadb_serve::{persist, pool};
//!
//! // Train on raw features; the bundle captures the standardiser.
//! let data = fig5_dataset(AnomalyType::Clustered, 7);
//! let served = ServedModel::train(
//!     &data,
//!     DetectorKind::IForest,
//!     UadbConfig::fast_for_tests(7),
//! )
//! .unwrap();
//!
//! // Round-trip through the binary format.
//! let mut file = Vec::new();
//! persist::save(&served, &mut file).unwrap();
//! let loaded = persist::load(&file[..]).unwrap();
//!
//! // Concurrent batch scoring matches in-process scoring exactly.
//! let pool = pool::ScoringPool::new(Arc::new(loaded), pool::PoolConfig::default());
//! let scores = pool.score(&data.x).unwrap();
//! assert_eq!(scores, served.score_rows(&data.x).unwrap());
//! ```
//!
//! For the HTTP layer see [`http::Server`] and `examples/serve_and_score.rs`
//! at the workspace root.

pub mod cli;
pub mod http;
pub mod json;
pub mod model;
pub mod persist;
pub mod pool;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod registry;
pub mod telemetry;

pub use http::{
    ConnectionDriver, DriverCtx, IoMode, Server, ServerConfig, ServerHandle, ServerStats,
    StopSignal,
};
pub use model::{ModelMeta, ScoreError, ScoreWorkspace, ServedModel, TeacherModel, Variant};
pub use persist::{
    load, load_file, load_record, load_record_file, load_teacher, load_teacher_file, save,
    save_file, save_teacher, save_teacher_file, PersistError, Record, FORMAT_VERSION,
};
pub use pool::{PoolConfig, ScoreCallback, ScoreTiming, ScoringPool};
pub use registry::{ModelRegistry, RegistryError};
pub use telemetry::{metrics, RequestTimer, ServeMetrics, ShardStats, Stage};
