//! The `uadb-serve` binary: train, persist, score and serve UADB
//! models. See `uadb-serve --help` or [`uadb_serve::cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(uadb_serve::cli::run(&args));
}
