//! The `uadb-serve` command line: `train`, `score`, `serve`.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs only) to stay
//! dependency-free; every subcommand funnels into the library API, so
//! the binary is a thin shell over [`crate::model`], [`crate::persist`]
//! and [`crate::http`].

use crate::http::{IoMode, Server, ServerConfig};
use crate::json;
use crate::model::ServedModel;
use crate::persist;
use crate::pool::PoolConfig;
use crate::registry::{self, ModelRegistry};
use crate::telemetry;
use std::sync::Arc;
use std::time::Duration;
use uadb::UadbConfig;
use uadb_data::io::{read_csv_file, LabelColumn};
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_data::Dataset;
use uadb_detectors::DetectorKind;
use uadb_metrics::roc_auc;
use uadb_telemetry::{log::logger, Level};

/// Usage text shown on `--help` or argument errors.
pub const USAGE: &str = "\
uadb-serve — persistence and batch-scoring server for UADB models

USAGE:
  uadb-serve train --out FILE [--save-teacher FILE]
                   [--dataset NAME | --synthetic TYPE | --csv FILE]
                   [--teacher KIND] [--seed N] [--steps N] [--scale quick|full]
                   [--train-workers N] [--label-last]
  uadb-serve score --model FILE (--csv FILE | --json JSON) [--label-last] [--out FILE]
  uadb-serve serve --model [NAME=]FILE[,TEACHER_FILE] [--model ...] [--default NAME]
                   [--addr HOST:PORT] [--workers N] [--shard-rows N]
                   [--max-conns N] [--max-requests N] [--idle-timeout-ms N]
                   [--io threads|epoll] [--shards N]
                   [--log-level error|warn|info|debug]
                   [--log-json] [--slow-ms N] [--drift-warn-psi T]
  uadb-serve info  --model FILE

SUBCOMMANDS:
  train   Fit a teacher + UADB booster and write a versioned model file.
          --save-teacher FILE additionally snapshots the *fitted* teacher
          (trees, bases, tail tables, …) so the server can A/B it against
          the booster. Datasets: a suite roster name (--dataset 39_thyroid),
          a synthetic anomaly type (--synthetic
          local|global|clustered|dependency), or a numeric CSV (--csv
          data.csv, --label-last if the last column is a 0/1 label used only
          for the AUC report). --train-workers N splits each booster fit
          across N threads (default 1; 0 = all cores) with bit-identical
          trained weights for every value.
  score   Load a model file and score rows from a CSV file or an inline
          JSON array of rows; writes `row,score` CSV to stdout or --out.
  serve   Serve one or more model files over keep-alive HTTP/1.1.
          --model is repeatable; NAME=FILE registers FILE under NAME (a bare
          FILE is registered as `default`), and FILE,TEACHER_FILE attaches a
          teacher snapshot so POST /score/NAME?variant=teacher|booster|both
          serves the paper's comparison live. Bare POST /score routes to the
          default model (--default NAME overrides; otherwise the first
          --model). --io picks the connection backend: `epoll` (Linux
          default) drives every socket from N sharded event loops so
          --max-conns can grow past thread counts; `threads` (non-Linux
          default) is the portable one-thread-per-connection fallback.
          --shards N runs N epoll reactor shards (default: min(cores,
          scoring workers); ignored by --io threads). POST /score also
          accepts the binary row payload (Content-Type:
          application/x-uadb-rows; see README wire-protocol spec) and
          answers with raw little-endian scores. Endpoints:
          POST /score[/NAME][?variant=...], GET /model[/NAME],
          GET /models, POST /admin/reload/NAME,
          POST|DELETE /admin/teacher/NAME (attach/detach a teacher
          snapshot at runtime from {\"path\": ...}), GET /healthz (live
          stats: backend, open connections, per-model request counts,
          latency percentiles), GET /metrics (Prometheus text
          exposition: stage histograms, pool gauges, per-model
          counters, teacher/booster divergence, score/feature drift),
          GET /admin/slow (the last requests slower than --slow-ms,
          with per-stage breakdowns), GET /admin/drift[/NAME] (live
          model-quality report: PSI vs. the training baseline,
          per-feature standardized mean shifts, anomaly rates) and
          POST /admin/drift/NAME/reset (start a fresh live window).
          --log-level sets stderr verbosity (default warn), --log-json
          switches log lines to JSON, --slow-ms sets the slow-request
          capture threshold (default 100), --drift-warn-psi T emits a
          rate-limited warn log when any model's score PSI exceeds T
          (default: off).
  info    Print a model or teacher-snapshot file's metadata as JSON.

Teachers: IForest HBOS LOF KNN PCA OCSVM CBLOF COF SOD ECOD GMM LODA COPOD
DeepSVDD (case-insensitive; default IForest).
";

/// A fatal CLI error carrying the message to print.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Runs the CLI on pre-split arguments (without the program name).
/// Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            1
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| err("missing subcommand"))?;
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "train" => train(&flags),
        "score" => score(&flags),
        "serve" => serve(&flags),
        "info" => info(&flags),
        other => Err(err(format!("unknown subcommand `{other}`"))),
    }
}

/// `--name value` flag pairs.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(name) = it.next() {
            let name = name
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --flag, got `{name}`")))?;
            // Boolean flags take no value.
            if name == "label-last" || name == "log-json" {
                pairs.push((name.to_string(), "true".to_string()));
                continue;
            }
            let value = it.next().ok_or_else(|| err(format!("flag --{name} needs a value")))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable flag, in the order given.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(n, _)| n == name).map(|(_, v)| v.as_str()).collect()
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name).ok_or_else(|| err(format!("missing required --{name}")))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| err(format!("--{name} got unparsable value `{v}`"))),
        }
    }
}

fn load_training_data(flags: &Flags) -> Result<Dataset, CliError> {
    let scale = match flags.get("scale").unwrap_or("quick") {
        "quick" => SuiteScale::Quick,
        "full" => SuiteScale::Full,
        other => return Err(err(format!("--scale must be quick|full, got `{other}`"))),
    };
    let seed = flags.parse_num("seed", 0u64)?;
    let sources = ["dataset", "synthetic", "csv"].iter().filter(|s| flags.get(s).is_some()).count();
    if sources > 1 {
        return Err(err("--dataset, --synthetic and --csv are mutually exclusive"));
    }
    if let Some(name) = flags.get("dataset") {
        return generate_by_name(name, scale, seed).ok_or_else(|| {
            err(format!("unknown roster dataset `{name}` (see Table III names like 39_thyroid)"))
        });
    }
    if let Some(ty) = flags.get("synthetic") {
        let ty = match ty.to_ascii_lowercase().as_str() {
            "local" => AnomalyType::Local,
            "global" => AnomalyType::Global,
            "clustered" => AnomalyType::Clustered,
            "dependency" => AnomalyType::Dependency,
            other => {
                return Err(err(format!(
                    "--synthetic must be local|global|clustered|dependency, got `{other}`"
                )))
            }
        };
        return Ok(fig5_dataset(ty, seed));
    }
    if let Some(path) = flags.get("csv") {
        let labels =
            if flags.get("label-last").is_some() { LabelColumn::Last } else { LabelColumn::None };
        return read_csv_file(path, labels).map_err(|e| err(format!("reading {path}: {e}")));
    }
    Err(err("pick a training source: --dataset, --synthetic or --csv"))
}

fn train(flags: &Flags) -> Result<(), CliError> {
    let out = flags.require("out")?;
    let teacher = match flags.get("teacher") {
        None => DetectorKind::IForest,
        Some(name) => {
            DetectorKind::from_name(name).ok_or_else(|| err(format!("unknown teacher `{name}`")))?
        }
    };
    let seed = flags.parse_num("seed", 0u64)?;
    let train_workers = flags.parse_num("train-workers", 1usize)?;
    let data = load_training_data(flags)?;
    let mut cfg = UadbConfig::with_seed(seed);
    cfg.t_steps = flags.parse_num("steps", cfg.t_steps)?;
    if cfg.t_steps == 0 {
        return Err(err("--steps must be at least 1 (0 would write an untrained model)"));
    }
    println!(
        "training UADB on {} ({} rows × {} features), teacher {} …",
        data.name,
        data.n_samples(),
        data.n_features(),
        teacher.name()
    );
    let (served, fitted_teacher) =
        ServedModel::train_with_teacher_workers(&data, teacher, cfg, train_workers)
            .map_err(|e| err(format!("teacher failed: {e}")))?;
    // Ground-truth labels, when present, are used for reporting only.
    if data.n_anomalies() > 0 {
        let scores =
            served.score_rows(&data.x).map_err(|e| err(format!("self-scoring failed: {e}")))?;
        let auc = roc_auc(&data.labels_f64(), &scores);
        println!("training-set AUCROC (evaluation only): {auc:.4}");
    }
    persist::save_file(&served, out).map_err(|e| err(format!("writing {out}: {e}")))?;
    println!("wrote {out}");
    if let Some(teacher_out) = flags.get("save-teacher") {
        persist::save_teacher_file(&fitted_teacher, teacher_out)
            .map_err(|e| err(format!("writing {teacher_out}: {e}")))?;
        println!("wrote teacher snapshot {teacher_out}");
    }
    Ok(())
}

fn load_model(flags: &Flags) -> Result<ServedModel, CliError> {
    let path = flags.require("model")?;
    persist::load_file(path).map_err(|e| err(format!("loading {path}: {e}")))
}

fn score(flags: &Flags) -> Result<(), CliError> {
    let served = load_model(flags)?;
    let x = match (flags.get("csv"), flags.get("json")) {
        (Some(_), Some(_)) => return Err(err("--csv and --json are mutually exclusive")),
        (Some(path), None) => {
            // --label-last mirrors `train`: the same labelled CSV can be
            // scored without stripping its label column first.
            let labels = if flags.get("label-last").is_some() {
                LabelColumn::Last
            } else {
                LabelColumn::None
            };
            read_csv_file(path, labels).map_err(|e| err(format!("reading {path}: {e}")))?.x
        }
        (None, Some(text)) => {
            let rows = json::parse(text).map_err(|e| err(format!("--json: {e}")))?;
            let rows =
                rows.as_array().ok_or_else(|| err("--json must be an array of row arrays"))?;
            crate::http::rows_to_matrix(rows).map_err(err)?
        }
        (None, None) => return Err(err("pick an input: --csv FILE or --json '[[…]]'")),
    };
    let scores = served.score_rows(&x).map_err(|e| err(format!("scoring failed: {e}")))?;
    match flags.get("out") {
        None => {
            uadb_data::io::write_scores(std::io::stdout().lock(), &scores)
                .map_err(|e| err(format!("writing stdout: {e}")))?;
        }
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| err(format!("creating {path}: {e}")))?;
            uadb_data::io::write_scores(file, &scores)
                .map_err(|e| err(format!("writing {path}: {e}")))?;
            println!("wrote {} scores to {path}", scores.len());
        }
    }
    Ok(())
}

/// Splits a `--model` value into `(name, path, teacher_path)`:
/// `NAME=FILE` names the model explicitly, a bare `FILE` registers as
/// `default`, and `FILE,TEACHER_FILE` attaches a teacher snapshot.
fn parse_model_flag(value: &str) -> Result<(&str, &str, Option<&str>), CliError> {
    let (name, files) = match value.split_once('=') {
        Some((name, files)) => {
            if !registry::is_valid_name(name) {
                return Err(err(format!(
                    "invalid model name `{name}` (want 1-{} chars of [A-Za-z0-9._-])",
                    registry::MAX_NAME_LEN
                )));
            }
            (name, files)
        }
        None => ("default", value),
    };
    let (path, teacher) = match files.split_once(',') {
        Some((path, teacher)) => {
            if teacher.is_empty() {
                return Err(err(format!("--model {value}: empty teacher path")));
            }
            (path, Some(teacher))
        }
        None => (files, None),
    };
    if path.is_empty() {
        return Err(err(format!("--model {value}: empty path")));
    }
    Ok((name, path, teacher))
}

fn serve(flags: &Flags) -> Result<(), CliError> {
    let model_flags = flags.get_all("model");
    if model_flags.is_empty() {
        return Err(err("missing required --model (repeatable; NAME=FILE or FILE)"));
    }
    let pool_cfg = PoolConfig {
        workers: flags.parse_num("workers", 0usize)?,
        shard_rows: flags.parse_num("shard-rows", PoolConfig::default().shard_rows)?,
    };
    let registry = Arc::new(ModelRegistry::new());
    let mut first_name: Option<String> = None;
    for value in model_flags {
        let (name, path, teacher) = parse_model_flag(value)?;
        if registry.get(name).is_some() {
            return Err(err(format!("model name `{name}` given twice")));
        }
        registry
            .insert_from_files(name, path, teacher, pool_cfg.clone())
            .map_err(|e| err(format!("loading {path}: {e}")))?;
        first_name.get_or_insert_with(|| name.to_string());
    }
    // Bare /score routes to --default, or the first --model.
    let default_name = match flags.get("default") {
        Some(name) => name.to_string(),
        None => first_name.expect("at least one model registered"),
    };
    registry
        .set_default(&default_name)
        .map_err(|_| err(format!("--default {default_name} does not name a --model")))?;

    let defaults = ServerConfig::default();
    let io = match flags.get("io") {
        None => defaults.io,
        Some(name) => IoMode::from_name(name)
            .ok_or_else(|| err(format!("--io must be threads|epoll, got `{name}`")))?,
    };
    // `--shards 0` (the default) auto-sizes to min(cores, scoring
    // workers): more reactor loops than cores just contend, and more
    // than scoring workers cannot be fed. Explicit values are taken
    // as-is. The threaded backend ignores the knob.
    let shards = match flags.parse_num("shards", 0usize)? {
        0 => {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let workers = if pool_cfg.workers == 0 { cores } else { pool_cfg.workers };
            cores.min(workers).max(1)
        }
        n => n,
    };
    let server_cfg = ServerConfig {
        max_connections: flags.parse_num("max-conns", defaults.max_connections)?,
        max_requests_per_conn: flags.parse_num("max-requests", defaults.max_requests_per_conn)?,
        idle_timeout: Duration::from_millis(
            flags.parse_num("idle-timeout-ms", defaults.idle_timeout.as_millis() as u64)?,
        ),
        io_timeout: defaults.io_timeout,
        io,
        shards,
    };
    if server_cfg.max_connections == 0 || server_cfg.max_requests_per_conn == 0 {
        return Err(err("--max-conns and --max-requests must be at least 1"));
    }
    if server_cfg.idle_timeout.is_zero() {
        // A zero read timeout cannot be set on a socket; it would mean
        // "no timeout", the opposite of what the operator asked for.
        return Err(err("--idle-timeout-ms must be at least 1"));
    }

    // Telemetry plane knobs: stderr verbosity/format and the slow-request
    // capture threshold.
    if let Some(name) = flags.get("log-level") {
        let level = Level::parse(name).ok_or_else(|| {
            err(format!("--log-level must be error|warn|info|debug, got `{name}`"))
        })?;
        logger().set_level(level);
    }
    if flags.get("log-json").is_some() {
        logger().set_json(true);
    }
    let slow_ms = flags.parse_num("slow-ms", 100u64)?;
    telemetry::metrics().set_slow_threshold_ms(slow_ms);
    let drift_warn = flags.parse_num("drift-warn-psi", f64::INFINITY)?;
    if drift_warn.is_finite() {
        if !(drift_warn > 0.0) {
            return Err(err("--drift-warn-psi must be positive (PSI alert bands start ~0.1)"));
        }
        telemetry::metrics().set_drift_warn_psi(drift_warn);
    }

    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::bind(addr, Arc::clone(&registry), server_cfg)
        .map_err(|e| err(format!("binding {addr}: {e}")))?;
    let backend_desc = match io {
        IoMode::Epoll => format!("{} backend, {} shard(s)", io.name(), shards),
        IoMode::Threads => format!("{} backend", io.name()),
    };
    println!(
        "serving {} model(s) [default: {default_name}] on http://{} ({backend_desc})",
        registry.len(),
        server.local_addr().map_err(|e| err(e.to_string()))?,
    );
    println!(
        "endpoints: POST /score[/NAME], GET /model[/NAME], GET /models, \
         POST /admin/reload/NAME, POST|DELETE /admin/teacher/NAME, GET /healthz, \
         GET /metrics, GET /admin/slow, GET /admin/drift[/NAME], \
         POST /admin/drift/NAME/reset"
    );
    server.run().map_err(|e| err(format!("server failed: {e}")))
}

fn info(flags: &Flags) -> Result<(), CliError> {
    let path = flags.require("model")?;
    // Same serializers as `GET /model`, so the CLI and the server can
    // never drift apart on what a model file contains. `info` accepts
    // either record type; `score`/`serve` stay booster-first.
    let record =
        persist::load_record_file(path).map_err(|e| err(format!("loading {path}: {e}")))?;
    let doc = match &record {
        persist::Record::Booster(served) => crate::http::model_info(served, None),
        persist::Record::Teacher(teacher) => crate::http::teacher_info(teacher),
    };
    println!("{}", json::to_string(&doc));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_booleans() {
        let args: Vec<String> = ["--out", "m.uadb", "--label-last", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("out"), Some("m.uadb"));
        assert_eq!(f.get("label-last"), Some("true"));
        assert_eq!(f.parse_num("seed", 0u64).unwrap(), 7);
        assert_eq!(f.parse_num("steps", 5usize).unwrap(), 5);
        assert!(f.require("model").is_err());
    }

    #[test]
    fn flags_reject_malformed_input() {
        let bad: Vec<String> = vec!["out".into()];
        assert!(Flags::parse(&bad).is_err());
        let dangling: Vec<String> = vec!["--out".into()];
        assert!(Flags::parse(&dangling).is_err());
    }

    #[test]
    fn model_flag_values_parse() {
        assert_eq!(parse_model_flag("m.uadb").unwrap(), ("default", "m.uadb", None));
        assert_eq!(
            parse_model_flag("fraud=models/fraud.uadb").unwrap(),
            ("fraud", "models/fraud.uadb", None)
        );
        assert_eq!(
            parse_model_flag("fraud=m.uadb,t.uadb").unwrap(),
            ("fraud", "m.uadb", Some("t.uadb"))
        );
        assert_eq!(
            parse_model_flag("m.uadb,t.uadb").unwrap(),
            ("default", "m.uadb", Some("t.uadb"))
        );
        assert!(parse_model_flag("bad name=x.uadb").is_err());
        assert!(parse_model_flag("=x.uadb").is_err());
        assert!(parse_model_flag("a=").is_err());
        assert!(parse_model_flag("a=x.uadb,").is_err());
        assert!(parse_model_flag(",t.uadb").is_err());
        let args: Vec<String> =
            ["--model", "a=1.uadb", "--model", "b=2.uadb"].iter().map(|s| s.to_string()).collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get_all("model"), vec!["a=1.uadb", "b=2.uadb"]);
        assert_eq!(f.get_all("nope"), Vec::<&str>::new());
    }

    #[test]
    fn serve_flag_validation() {
        let none = Flags::parse(&[]).unwrap();
        assert!(serve(&none).unwrap_err().0.contains("--model"));
        let dup: Vec<String> =
            ["--model", "a=x.uadb", "--model", "a=y.uadb"].iter().map(|s| s.to_string()).collect();
        // Duplicate names fail before any file I/O only if the first
        // load succeeds, so here the missing file errors first; both are
        // rejections either way.
        assert!(serve(&Flags::parse(&dup).unwrap()).is_err());
    }

    #[test]
    fn info_document_reports_the_train_baseline() {
        let data = fig5_dataset(AnomalyType::Clustered, 17);
        let model =
            ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(17)).unwrap();
        let path =
            std::env::temp_dir().join(format!("uadb-info-baseline-{}.uadb", std::process::id()));
        persist::save_file(&model, &path).unwrap();

        // The exact document `info --model FILE` prints: fresh training
        // always captures a baseline, and `info` must surface it.
        let record = persist::load_record_file(&path).unwrap();
        let persist::Record::Booster(served) = &record else { panic!("expected booster record") };
        let doc = crate::http::model_info(served, None);
        let baseline = doc.get("baseline").expect("info output lost the baseline summary");
        let samples = baseline.get("samples").and_then(json::Value::as_f64).unwrap();
        assert_eq!(samples, data.n_samples() as f64);
        assert_eq!(baseline.get("threshold").and_then(json::Value::as_f64), Some(0.5));
        let rate = baseline.get("anomaly_rate").and_then(json::Value::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&rate), "anomaly rate {rate}");
        let q = baseline.get("score_quantiles").expect("quantile summary");
        let p50 = q.get("p50").and_then(json::Value::as_f64).unwrap();
        let p99 = q.get("p99").and_then(json::Value::as_f64).unwrap();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // The rendered JSON (what actually lands on stdout) carries it.
        assert!(json::to_string(&doc).contains("\"baseline\""));

        // Piggy-back on the saved file: `serve` must reject a
        // non-positive PSI warn threshold after loading the model.
        let args: Vec<String> =
            ["--model", &format!("infotest={}", path.display()), "--drift-warn-psi", "0"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let e = serve(&Flags::parse(&args).unwrap()).unwrap_err();
        assert!(e.0.contains("--drift-warn-psi"), "message: {}", e.0);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        let args: Vec<String> = vec!["frobnicate".into()];
        assert!(dispatch(&args).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn train_source_validation() {
        let both: Vec<String> = ["--dataset", "12_glass", "--synthetic", "local"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&both).unwrap();
        assert!(load_training_data(&f).is_err());
        let none = Flags::parse(&[]).unwrap();
        assert!(load_training_data(&none).is_err());
        let unknown: Vec<String> = ["--dataset", "nope"].iter().map(|s| s.to_string()).collect();
        assert!(load_training_data(&Flags::parse(&unknown).unwrap()).is_err());
    }

    #[test]
    fn zero_steps_is_rejected() {
        let args: Vec<String> =
            ["train", "--synthetic", "local", "--steps", "0", "--out", "/dev/null"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let e = dispatch(&args).unwrap_err();
        assert!(e.0.contains("--steps"), "message: {}", e.0);
    }

    #[test]
    fn synthetic_types_parse() {
        for ty in ["local", "global", "clustered", "dependency"] {
            let args: Vec<String> = ["--synthetic", ty].iter().map(|s| s.to_string()).collect();
            let d = load_training_data(&Flags::parse(&args).unwrap()).unwrap();
            assert!(d.n_samples() > 0);
        }
    }
}
