//! The alternative booster frameworks of Table VI (RQ4).
//!
//! | Scheme | Training | Inference |
//! |---|---|---|
//! | Naive        | static pseudo labels                  | booster output |
//! | Discrepancy  | static pseudo labels                  | std(booster, teacher) |
//! | Self         | iterative, `ŷ(t+1)=MinMax(f_B(X))`    | booster output |
//! | Discrepancy* | Self-Booster training                 | std(booster, teacher) |
//! | UADB         | Algorithm 1 (variance correction)     | booster output |
//!
//! All five share the identical MLP/CV-ensemble substrate and training
//! budget so the comparison isolates the label-update and inference
//! rules.

use crate::booster::{Uadb, UadbConfig, UadbError};
use uadb_data::preprocess::minmax_vec;
use uadb_data::splits::kfold;
use uadb_linalg::Matrix;
use uadb_nn::{train_regression, AdamParams, Mlp, MlpConfig, TrainConfig};

/// Which booster framework to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoosterScheme {
    /// The teacher itself (the "Origin" row of Table VI).
    Origin,
    /// Static distillation, booster output at inference.
    Naive,
    /// Static distillation, teacher/booster std-dev at inference.
    Discrepancy,
    /// Iterative self-labelled distillation, booster output.
    SelfBooster,
    /// Self-Booster training, teacher/booster std-dev at inference.
    DiscrepancyStar,
    /// Full UADB (Algorithm 1).
    Uadb,
}

impl BoosterScheme {
    /// All six rows of Table VI, in paper order.
    pub const ALL: [BoosterScheme; 6] = [
        BoosterScheme::Origin,
        BoosterScheme::Naive,
        BoosterScheme::Discrepancy,
        BoosterScheme::SelfBooster,
        BoosterScheme::DiscrepancyStar,
        BoosterScheme::Uadb,
    ];

    /// Paper-style row label.
    pub fn name(self) -> &'static str {
        match self {
            BoosterScheme::Origin => "Origin",
            BoosterScheme::Naive => "Naive Booster",
            BoosterScheme::Discrepancy => "Discrepancy Booster",
            BoosterScheme::SelfBooster => "Self Booster",
            BoosterScheme::DiscrepancyStar => "Discrepancy Booster*",
            BoosterScheme::Uadb => "UADB",
        }
    }

    /// Runs the scheme: returns final anomaly scores on the training
    /// rows. `teacher_scores` are the raw detector outputs.
    pub fn run(
        self,
        x: &Matrix,
        teacher_scores: &[f64],
        cfg: &UadbConfig,
    ) -> Result<Vec<f64>, UadbError> {
        match self {
            BoosterScheme::Origin => Ok(teacher_scores.to_vec()),
            BoosterScheme::Uadb => {
                Ok(Uadb::new(cfg.clone()).fit(x, teacher_scores)?.scores().to_vec())
            }
            BoosterScheme::Naive => {
                let fb = train_static(x, teacher_scores, cfg)?;
                Ok(fb)
            }
            BoosterScheme::Discrepancy => {
                let fb = train_static(x, teacher_scores, cfg)?;
                Ok(discrepancy(&fb, teacher_scores))
            }
            BoosterScheme::SelfBooster => {
                let fb = train_self(x, teacher_scores, cfg)?;
                Ok(fb)
            }
            BoosterScheme::DiscrepancyStar => {
                let fb = train_self(x, teacher_scores, cfg)?;
                Ok(discrepancy(&fb, teacher_scores))
            }
        }
    }
}

/// Per-instance standard deviation of {booster output, normalised teacher
/// score} — the "Discrepancy" inference rule.
fn discrepancy(booster: &[f64], teacher_scores: &[f64]) -> Vec<f64> {
    let teacher = minmax_vec(teacher_scores);
    booster
        .iter()
        .zip(&teacher)
        .map(|(&b, &t)| {
            // std of two values = |a - b| / 2 (population convention).
            (b - t).abs() / 2.0
        })
        .collect()
}

/// Builds the CV ensemble shared by the variant trainers.
fn build_ensemble(x: &Matrix, cfg: &UadbConfig) -> (Vec<Mlp>, Vec<Vec<usize>>, Vec<Matrix>) {
    let folds = kfold(x.rows(), cfg.cv_folds.max(1), cfg.seed ^ 0x5eed_f01d);
    let ensemble: Vec<Mlp> = (0..folds.len())
        .map(|f| {
            Mlp::new(&MlpConfig {
                input_dim: x.cols(),
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                activation: uadb_nn::Activation::Sigmoid,
                seed: cfg.seed.wrapping_add(f as u64).wrapping_mul(0x9e37_79b9),
            })
        })
        .collect();
    let train_idx: Vec<Vec<usize>> = folds.iter().map(|f| f.train.clone()).collect();
    let fold_x: Vec<Matrix> = folds.iter().map(|f| x.select_rows(&f.train)).collect();
    (ensemble, train_idx, fold_x)
}

fn ensemble_predict(ensemble: &[Mlp], x: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; x.rows()];
    for mlp in ensemble {
        for (o, v) in out.iter_mut().zip(mlp.predict_vec(x)) {
            *o += v;
        }
    }
    let inv = 1.0 / ensemble.len().max(1) as f64;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Naive/Discrepancy training: the same total budget as UADB
/// (T × epochs_per_step epochs) against *static* pseudo labels.
fn train_static(
    x: &Matrix,
    teacher_scores: &[f64],
    cfg: &UadbConfig,
) -> Result<Vec<f64>, UadbError> {
    validate(x, teacher_scores)?;
    let pseudo = minmax_vec(teacher_scores);
    let (mut ensemble, train_idx, fold_x) = build_ensemble(x, cfg);
    for t in 1..=cfg.t_steps {
        for (f, mlp) in ensemble.iter_mut().enumerate() {
            let targets: Vec<f64> = train_idx[f].iter().map(|&i| pseudo[i]).collect();
            let tc = TrainConfig {
                adam: AdamParams { lr: cfg.learning_rate, ..AdamParams::default() },
                batch_size: cfg.effective_batch(fold_x[f].rows()),
                epochs: cfg.epochs_per_step,
                shuffle_seed: cfg.seed.wrapping_add((t * 31 + f) as u64),
                workers: 1,
                progress: cfg.progress.clone(),
            };
            train_regression(mlp, &fold_x[f], &targets, &tc);
        }
    }
    Ok(ensemble_predict(&ensemble, x))
}

/// Self-Booster training: iterative, but the next pseudo labels are the
/// booster's own normalised output (no variance term).
fn train_self(x: &Matrix, teacher_scores: &[f64], cfg: &UadbConfig) -> Result<Vec<f64>, UadbError> {
    validate(x, teacher_scores)?;
    let mut pseudo = minmax_vec(teacher_scores);
    let (mut ensemble, train_idx, fold_x) = build_ensemble(x, cfg);
    let mut fb = vec![0.0; x.rows()];
    for t in 1..=cfg.t_steps {
        for (f, mlp) in ensemble.iter_mut().enumerate() {
            let targets: Vec<f64> = train_idx[f].iter().map(|&i| pseudo[i]).collect();
            let tc = TrainConfig {
                adam: AdamParams { lr: cfg.learning_rate, ..AdamParams::default() },
                batch_size: cfg.effective_batch(fold_x[f].rows()),
                epochs: cfg.epochs_per_step,
                shuffle_seed: cfg.seed.wrapping_add((t * 37 + f) as u64),
                workers: 1,
                progress: cfg.progress.clone(),
            };
            train_regression(mlp, &fold_x[f], &targets, &tc);
        }
        fb = ensemble_predict(&ensemble, x);
        pseudo = minmax_vec(&fb);
    }
    Ok(fb)
}

fn validate(x: &Matrix, teacher_scores: &[f64]) -> Result<(), UadbError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(UadbError::EmptyInput);
    }
    if teacher_scores.len() != x.rows() {
        return Err(UadbError::LengthMismatch { rows: x.rows(), scores: teacher_scores.len() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};
    use uadb_detectors::DetectorKind;
    use uadb_metrics::roc_auc;

    fn setup() -> (uadb_data::Dataset, Vec<f64>) {
        let d = fig5_dataset(AnomalyType::Global, 11).standardized();
        let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
        (d, teacher)
    }

    #[test]
    fn all_schemes_produce_scores() {
        let (d, teacher) = setup();
        let cfg = UadbConfig::fast_for_tests(0);
        for scheme in BoosterScheme::ALL {
            let s = scheme.run(&d.x, &teacher, &cfg).unwrap();
            assert_eq!(s.len(), d.n_samples(), "{}", scheme.name());
            assert!(s.iter().all(|v| v.is_finite()), "{}", scheme.name());
        }
    }

    #[test]
    fn origin_passes_teacher_through() {
        let (d, teacher) = setup();
        let cfg = UadbConfig::fast_for_tests(0);
        let s = BoosterScheme::Origin.run(&d.x, &teacher, &cfg).unwrap();
        assert_eq!(s, teacher);
    }

    #[test]
    fn naive_booster_mimics_teacher_ranking() {
        // Without error correction the booster just distils the teacher;
        // its AUC should land near the teacher's.
        let (d, teacher) = setup();
        let labels = d.labels_f64();
        let cfg = UadbConfig { t_steps: 6, ..UadbConfig::fast_for_tests(1) };
        let s = BoosterScheme::Naive.run(&d.x, &teacher, &cfg).unwrap();
        let teacher_auc = roc_auc(&labels, &teacher);
        let naive_auc = roc_auc(&labels, &s);
        assert!(
            (naive_auc - teacher_auc).abs() < 0.15,
            "naive {naive_auc:.3} vs teacher {teacher_auc:.3}"
        );
    }

    #[test]
    fn discrepancy_scores_differ_from_naive() {
        let (d, teacher) = setup();
        let cfg = UadbConfig::fast_for_tests(2);
        let naive = BoosterScheme::Naive.run(&d.x, &teacher, &cfg).unwrap();
        let disc = BoosterScheme::Discrepancy.run(&d.x, &teacher, &cfg).unwrap();
        assert_ne!(naive, disc);
        // Discrepancy is a std-dev: non-negative and bounded by 0.5.
        assert!(disc.iter().all(|&v| (0.0..=0.5).contains(&v)));
    }

    #[test]
    fn discrepancy_of_identical_vectors_is_zero() {
        let fb = vec![0.2, 0.8, 1.0];
        let d = discrepancy(&fb, &[0.2, 0.8, 1.0]);
        // teacher gets min-max normalised: [0, 0.75, 1]
        assert!((d[0] - 0.1).abs() < 1e-12);
        let d2 = discrepancy(&[0.0, 0.75, 1.0], &[0.2, 0.8, 1.0]);
        assert!(d2.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn schemes_validate_input() {
        let cfg = UadbConfig::fast_for_tests(0);
        let x = Matrix::zeros(2, 2);
        for scheme in [BoosterScheme::Naive, BoosterScheme::SelfBooster] {
            let err = scheme.run(&x, &[0.1], &cfg).err().unwrap();
            assert!(matches!(err, UadbError::LengthMismatch { .. }), "{}", scheme.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = BoosterScheme::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
