//! # UADB: Unsupervised Anomaly Detection Booster
//!
//! Rust reproduction of *UADB: Unsupervised Anomaly Detection Booster*
//! (Ye, Liu et al., ICDE 2023). UADB is a **model-agnostic** framework
//! that improves any unsupervised anomaly detector on tabular data by
//! iterative knowledge distillation with **variance-based error
//! correction** (the paper's Algorithm 1):
//!
//! 1. the source (teacher) model's min-max-normalised scores become the
//!    initial pseudo labels `ŷ(1)`;
//! 2. each step trains a neural booster against the current pseudo
//!    labels, estimates the per-instance variance across the pseudo-label
//!    history plus the booster's output, and
//! 3. updates `ŷ(t+1) = MinMaxScale(ŷ(t) + v̂)` — anomalies carry higher
//!    variance than inliers, so false negatives rise faster than false
//!    positives until their ranking errors invert.
//!
//! ## Quick start
//!
//! ```
//! use uadb::{Uadb, UadbConfig};
//! use uadb_data::synth::{fig5_dataset, AnomalyType};
//! use uadb_detectors::DetectorKind;
//! use uadb_metrics::roc_auc;
//!
//! let data = fig5_dataset(AnomalyType::Clustered, 7).standardized();
//! let mut teacher = DetectorKind::IForest.build(0);
//! let teacher_scores = teacher.fit_score(&data.x).unwrap();
//!
//! let booster = Uadb::new(UadbConfig::fast_for_tests(0)).fit(&data.x, &teacher_scores).unwrap();
//! let boosted = booster.scores().to_vec();
//! let labels = data.labels_f64();
//! // The booster refines the teacher's ranking on clustered anomalies.
//! assert!(roc_auc(&labels, &boosted) > 0.5);
//! ```
//!
//! Modules:
//! * [`booster`] — Algorithm 1 with the 3-fold CV booster ensemble,
//! * [`variants`] — the four alternative boosters of Table VI,
//! * [`variance_probe`] — the Fig. 1/2 variance evidence,
//! * [`trajectory`] — the Fig. 4/9 per-case score/rank traces,
//! * [`experiment`] — the model × dataset harness behind Tables IV–VI.

pub mod booster;
pub mod experiment;
pub mod trajectory;
pub mod variance_probe;
pub mod variants;

pub use booster::{CorrectionScale, ScoreCalibration, ScoreScratch, Uadb, UadbConfig, UadbModel};
pub use experiment::{run_matrix, summarize_model, ExperimentConfig, ModelSummary, PairResult};
pub use variants::BoosterScheme;
