//! Per-case trajectories during UADB training (Figs. 4 and 9).
//!
//! Instances are classified into TP/FN/FP/TN by combining the ground
//! truth with the *teacher's* thresholded prediction (Table II). The
//! traces then track how the booster's mean score (Fig. 4) and mean
//! ranking (Fig. 9) of each case evolve over the iterations — the error
//! correction story is that FN ranks rise and FP ranks fall.

use crate::booster::{Uadb, UadbConfig, UadbError, UadbModel};
use uadb_data::preprocess::minmax_vec;
use uadb_data::Dataset;
use uadb_metrics::auc::average_ranks;
use uadb_metrics::{roc_auc, threshold_by_contamination};

/// The four confusion cases of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Anomaly, teacher says anomaly.
    TruePositive,
    /// Anomaly, teacher says normal — the booster must raise these.
    FalseNegative,
    /// Normal, teacher says anomaly — the booster must lower these.
    FalsePositive,
    /// Normal, teacher says normal.
    TrueNegative,
}

impl Case {
    /// All cases in the display order of Fig. 4.
    pub const ALL: [Case; 4] =
        [Case::TrueNegative, Case::TruePositive, Case::FalsePositive, Case::FalseNegative];

    /// Short label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Case::TruePositive => "TP",
            Case::FalseNegative => "FN",
            Case::FalsePositive => "FP",
            Case::TrueNegative => "TN",
        }
    }
}

/// Case assignment of every instance w.r.t. the teacher's thresholded
/// initial pseudo labels. The threshold follows PyOD's contamination
/// convention with the dataset's true anomaly rate.
pub fn assign_cases(data: &Dataset, teacher_scores: &[f64]) -> Vec<Case> {
    let pseudo = minmax_vec(teacher_scores);
    let contamination =
        (data.n_anomalies() as f64 / data.n_samples().max(1) as f64).clamp(0.001, 0.5);
    let thr = threshold_by_contamination(&pseudo, contamination);
    pseudo
        .iter()
        .zip(&data.labels)
        .map(|(&s, &l)| match (l == 1, s >= thr) {
            (true, true) => Case::TruePositive,
            (true, false) => Case::FalseNegative,
            (false, true) => Case::FalsePositive,
            (false, false) => Case::TrueNegative,
        })
        .collect()
}

/// One iteration-indexed trace per case, plus the AUCROC development.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Case of every instance (fixed, from the teacher).
    pub cases: Vec<Case>,
    /// Mean booster *score* per case per iteration (Fig. 4), indexed
    /// `[iteration][case in Case::ALL order]`.
    pub mean_scores: Vec<[f64; 4]>,
    /// Mean *rank* per case per iteration (Fig. 9; higher rank = scored
    /// more anomalous).
    pub mean_ranks: Vec<[f64; 4]>,
    /// Booster AUCROC per iteration (Fig. 9 bottom).
    pub auc_per_iter: Vec<f64>,
}

/// Fits UADB and records the per-case trajectories.
pub fn trace(
    data: &Dataset,
    teacher_scores: &[f64],
    cfg: &UadbConfig,
) -> Result<(Trajectory, UadbModel), UadbError> {
    let model = Uadb::new(cfg.clone()).fit(&data.x, teacher_scores)?;
    let cases = assign_cases(data, teacher_scores);
    let labels = data.labels_f64();
    let mut mean_scores = Vec::with_capacity(model.booster_history().len());
    let mut mean_ranks = Vec::with_capacity(model.booster_history().len());
    let mut auc_per_iter = Vec::with_capacity(model.booster_history().len());
    for fb in model.booster_history() {
        mean_scores.push(case_means(fb, &cases));
        let ranks = average_ranks(fb);
        mean_ranks.push(case_means(&ranks, &cases));
        auc_per_iter.push(roc_auc(&labels, fb));
    }
    Ok((Trajectory { cases, mean_scores, mean_ranks, auc_per_iter }, model))
}

/// Mean of `values` within each case bucket (0.0 for empty buckets).
fn case_means(values: &[f64], cases: &[Case]) -> [f64; 4] {
    let mut sums = [0.0f64; 4];
    let mut counts = [0usize; 4];
    for (&v, &c) in values.iter().zip(cases) {
        let slot = Case::ALL.iter().position(|&a| a == c).expect("case in ALL");
        sums[slot] += v;
        counts[slot] += 1;
    }
    let mut out = [0.0f64; 4];
    for i in 0..4 {
        if counts[i] > 0 {
            out[i] = sums[i] / counts[i] as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};
    use uadb_detectors::DetectorKind;

    #[test]
    fn cases_partition_dataset() {
        let d = fig5_dataset(AnomalyType::Global, 0).standardized();
        let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
        let cases = assign_cases(&d, &teacher);
        assert_eq!(cases.len(), d.n_samples());
        // anomaly count must equal TP + FN
        let anoms =
            cases.iter().filter(|c| matches!(c, Case::TruePositive | Case::FalseNegative)).count();
        assert_eq!(anoms, d.n_anomalies());
    }

    #[test]
    fn trace_shapes_and_monotone_structure() {
        let d = fig5_dataset(AnomalyType::Clustered, 2).standardized();
        let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
        let cfg = UadbConfig::fast_for_tests(0);
        let t = cfg.t_steps;
        let (traj, _model) = trace(&d, &teacher, &cfg).unwrap();
        assert_eq!(traj.mean_scores.len(), t);
        assert_eq!(traj.mean_ranks.len(), t);
        assert_eq!(traj.auc_per_iter.len(), t);
        for aucs in &traj.auc_per_iter {
            assert!((0.0..=1.0).contains(aucs));
        }
    }

    #[test]
    fn tp_scores_exceed_tn_scores() {
        // Knowledge transfer must keep the teacher's correct decisions:
        // TP mean score stays above TN mean score throughout.
        let d = fig5_dataset(AnomalyType::Global, 3).standardized();
        let teacher = DetectorKind::Knn.build(0).fit_score(&d.x).unwrap();
        let (traj, _) = trace(&d, &teacher, &UadbConfig::fast_for_tests(1)).unwrap();
        let last = traj.mean_scores.last().unwrap();
        let tn = last[0]; // Case::ALL order: TN, TP, FP, FN
        let tp = last[1];
        assert!(tp > tn, "TP mean {tp} must stay above TN mean {tn}");
    }

    #[test]
    fn case_labels() {
        assert_eq!(Case::TruePositive.label(), "TP");
        assert_eq!(Case::ALL.len(), 4);
    }
}
