//! The model × dataset experiment harness behind Tables IV–VI and
//! Figs. 6/7/10.
//!
//! Work items (one detector on one dataset, averaged over `n_runs`
//! seeds) are distributed over a crossbeam worker pool; each item is
//! single-threaded and deterministic given its seed, so the full matrix
//! is reproducible regardless of thread count.

use crate::booster::{Uadb, UadbConfig};
use crate::variants::BoosterScheme;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use uadb_data::Dataset;
use uadb_detectors::DetectorKind;
use uadb_metrics::{average_precision, roc_auc};
use uadb_stats::{wilcoxon_signed_rank, WilcoxonResult};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Booster configuration (paper defaults unless overridden).
    pub booster: UadbConfig,
    /// Independent runs averaged per cell (paper: 10; benches default to
    /// `UADB_RUNS` or 1 to stay laptop-sized).
    pub n_runs: usize,
    /// Worker threads for the matrix (0 = all available cores).
    pub n_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { booster: UadbConfig::default(), n_runs: 1, n_threads: 0 }
    }
}

impl ExperimentConfig {
    /// Reads `UADB_RUNS` from the environment (default 1).
    pub fn runs_from_env() -> usize {
        std::env::var("UADB_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
    }
}

/// Result of one (model, dataset) cell, averaged over runs.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Dataset name.
    pub dataset: String,
    /// Detector display name.
    pub model: &'static str,
    /// Teacher AUCROC.
    pub teacher_auc: f64,
    /// Teacher Average Precision.
    pub teacher_ap: f64,
    /// UADB booster AUCROC (final iteration).
    pub booster_auc: f64,
    /// UADB booster AP (final iteration).
    pub booster_ap: f64,
    /// Booster AUCROC after each iteration `1..=T` (Table V / Fig. 7).
    pub iter_auc: Vec<f64>,
    /// Booster AP after each iteration.
    pub iter_ap: Vec<f64>,
}

impl PairResult {
    /// AUCROC improvement of the booster over its teacher.
    pub fn auc_improvement(&self) -> f64 {
        self.booster_auc - self.teacher_auc
    }

    /// AP improvement of the booster over its teacher.
    pub fn ap_improvement(&self) -> f64 {
        self.booster_ap - self.teacher_ap
    }
}

/// Runs one (model, dataset) cell: teacher fit/score + UADB, averaged
/// over `n_runs` seeds. The dataset is standardised internally (ADBench
/// preprocessing).
pub fn run_pair(kind: DetectorKind, data: &Dataset, cfg: &ExperimentConfig) -> PairResult {
    let std_data = data.standardized();
    let labels = std_data.labels_f64();
    let t_steps = cfg.booster.t_steps;
    let mut teacher_auc = 0.0;
    let mut teacher_ap = 0.0;
    let mut iter_auc = vec![0.0; t_steps];
    let mut iter_ap = vec![0.0; t_steps];
    let runs = cfg.n_runs.max(1);
    for run in 0..runs {
        let seed = cfg.booster.seed ^ (run as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut det = kind.build(seed);
        let teacher_scores = det
            .fit_score(&std_data.x)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.name(), data.name));
        teacher_auc += roc_auc(&labels, &teacher_scores);
        teacher_ap += average_precision(&labels, &teacher_scores);
        let bcfg = UadbConfig { seed, ..cfg.booster.clone() };
        let model = Uadb::new(bcfg)
            .fit(&std_data.x, &teacher_scores)
            .unwrap_or_else(|e| panic!("UADB failed on {}: {e}", data.name));
        for (t, fb) in model.booster_history().iter().enumerate() {
            iter_auc[t] += roc_auc(&labels, fb);
            iter_ap[t] += average_precision(&labels, fb);
        }
    }
    let inv = 1.0 / runs as f64;
    for v in iter_auc.iter_mut().chain(iter_ap.iter_mut()) {
        *v *= inv;
    }
    PairResult {
        dataset: data.name.clone(),
        model: kind.name(),
        teacher_auc: teacher_auc * inv,
        teacher_ap: teacher_ap * inv,
        booster_auc: iter_auc.last().copied().unwrap_or(0.0),
        booster_ap: iter_ap.last().copied().unwrap_or(0.0),
        iter_auc,
        iter_ap,
    }
}

/// Runs the full model × dataset matrix on a worker pool. Results are
/// returned in `(model-major, dataset-minor)` order regardless of
/// scheduling.
pub fn run_matrix(
    kinds: &[DetectorKind],
    datasets: &[Dataset],
    cfg: &ExperimentConfig,
) -> Vec<PairResult> {
    let work: Vec<(usize, DetectorKind, &Dataset)> = kinds
        .iter()
        .flat_map(|&k| datasets.iter().map(move |d| (k, d)))
        .enumerate()
        .map(|(i, (k, d))| (i, k, d))
        .collect();
    let n_work = work.len();
    let results: Mutex<Vec<Option<PairResult>>> = Mutex::new(vec![None; n_work]);
    let next = AtomicUsize::new(0);
    let threads = effective_threads(cfg.n_threads, n_work);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_work {
                    break;
                }
                let (slot, kind, data) = work[i];
                let r = run_pair(kind, data, cfg);
                results.lock()[slot] = Some(r);
            });
        }
    })
    .expect("worker pool panicked");
    results.into_inner().into_iter().map(|r| r.expect("all work items completed")).collect()
}

fn effective_threads(requested: usize, n_work: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let t = if requested == 0 { avail } else { requested };
    t.clamp(1, n_work.max(1))
}

/// One row of Table IV for one model and one metric.
#[derive(Debug, Clone)]
pub struct ModelSummary {
    /// Detector display name.
    pub model: &'static str,
    /// Mean teacher score over all datasets ("Original").
    pub original: f64,
    /// Mean booster − teacher improvement.
    pub improvement: f64,
    /// Improvement as a percentage of the original.
    pub improvement_pct: f64,
    /// Number of datasets where the booster improved ("Effects").
    pub effects: usize,
    /// Wilcoxon signed-rank p-value over the paired per-dataset scores
    /// (`None` when every pair ties).
    pub p_value: Option<f64>,
    /// Datasets aggregated.
    pub n_datasets: usize,
}

/// Which metric a summary aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Area under the ROC curve.
    AucRoc,
    /// Average precision.
    Ap,
}

/// Builds a Table IV row for `model` from its per-dataset results.
pub fn summarize_model(
    results: &[PairResult],
    model: &'static str,
    metric: Metric,
) -> ModelSummary {
    let rows: Vec<&PairResult> = results.iter().filter(|r| r.model == model).collect();
    let n = rows.len();
    let (teacher, booster): (Vec<f64>, Vec<f64>) = rows
        .iter()
        .map(|r| match metric {
            Metric::AucRoc => (r.teacher_auc, r.booster_auc),
            Metric::Ap => (r.teacher_ap, r.booster_ap),
        })
        .unzip();
    let original = mean(&teacher);
    let boosted = mean(&booster);
    let improvement = boosted - original;
    let effects = teacher.iter().zip(&booster).filter(|(t, b)| b > t).count();
    let p_value = wilcoxon_signed_rank(&booster, &teacher).map(|w: WilcoxonResult| w.p_value);
    ModelSummary {
        model,
        original,
        improvement,
        improvement_pct: if original.abs() > 1e-12 { 100.0 * improvement / original } else { 0.0 },
        effects,
        p_value,
        n_datasets: n,
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Per-scheme metrics for one (model, dataset) cell — the Table VI
/// ingredient.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Dataset name.
    pub dataset: String,
    /// Detector display name.
    pub model: &'static str,
    /// Scheme display name.
    pub scheme: &'static str,
    /// AUCROC of the scheme's final scores.
    pub auc: f64,
    /// AP of the scheme's final scores.
    pub ap: f64,
}

/// Runs every booster scheme on one (model, dataset) cell, sharing the
/// teacher scores so the comparison isolates the booster framework.
pub fn run_pair_schemes(
    kind: DetectorKind,
    data: &Dataset,
    schemes: &[BoosterScheme],
    cfg: &ExperimentConfig,
) -> Vec<SchemeResult> {
    let std_data = data.standardized();
    let labels = std_data.labels_f64();
    let runs = cfg.n_runs.max(1);
    let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); schemes.len()];
    for run in 0..runs {
        let seed = cfg.booster.seed ^ (run as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut det = kind.build(seed);
        let teacher_scores = det
            .fit_score(&std_data.x)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.name(), data.name));
        let bcfg = UadbConfig { seed, ..cfg.booster.clone() };
        for (si, &scheme) in schemes.iter().enumerate() {
            let scores = scheme
                .run(&std_data.x, &teacher_scores, &bcfg)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", scheme.name(), data.name));
            acc[si].0 += roc_auc(&labels, &scores);
            acc[si].1 += average_precision(&labels, &scores);
        }
    }
    let inv = 1.0 / runs as f64;
    schemes
        .iter()
        .zip(acc)
        .map(|(&scheme, (auc, ap))| SchemeResult {
            dataset: data.name.clone(),
            model: kind.name(),
            scheme: scheme.name(),
            auc: auc * inv,
            ap: ap * inv,
        })
        .collect()
}

/// Parallel scheme matrix over models × datasets (Table VI).
pub fn run_scheme_matrix(
    kinds: &[DetectorKind],
    datasets: &[Dataset],
    schemes: &[BoosterScheme],
    cfg: &ExperimentConfig,
) -> Vec<SchemeResult> {
    let work: Vec<(usize, DetectorKind, &Dataset)> = kinds
        .iter()
        .flat_map(|&k| datasets.iter().map(move |d| (k, d)))
        .enumerate()
        .map(|(i, (k, d))| (i, k, d))
        .collect();
    let n_work = work.len();
    let results: Mutex<Vec<Vec<SchemeResult>>> = Mutex::new(vec![Vec::new(); n_work]);
    let next = AtomicUsize::new(0);
    let threads = effective_threads(cfg.n_threads, n_work);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_work {
                    break;
                }
                let (slot, kind, data) = work[i];
                let r = run_pair_schemes(kind, data, schemes, cfg);
                results.lock()[slot] = r;
            });
        }
    })
    .expect("worker pool panicked");
    results.into_inner().into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig { booster: UadbConfig::fast_for_tests(0), n_runs: 1, n_threads: 2 }
    }

    #[test]
    fn run_pair_fills_all_fields() {
        let d = fig5_dataset(AnomalyType::Global, 0);
        let cfg = quick_cfg();
        let r = run_pair(DetectorKind::Hbos, &d, &cfg);
        assert_eq!(r.model, "HBOS");
        assert_eq!(r.iter_auc.len(), cfg.booster.t_steps);
        assert!(r.teacher_auc > 0.0 && r.teacher_auc <= 1.0);
        assert!(r.booster_auc > 0.0 && r.booster_auc <= 1.0);
        assert_eq!(r.booster_auc, *r.iter_auc.last().unwrap());
        assert!((r.auc_improvement() - (r.booster_auc - r.teacher_auc)).abs() < 1e-15);
    }

    #[test]
    fn matrix_preserves_order_and_counts() {
        let datasets =
            vec![fig5_dataset(AnomalyType::Global, 1), fig5_dataset(AnomalyType::Local, 2)];
        let kinds = [DetectorKind::Hbos, DetectorKind::Knn];
        let results = run_matrix(&kinds, &datasets, &quick_cfg());
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].model, "HBOS");
        assert_eq!(results[1].model, "HBOS");
        assert_eq!(results[2].model, "KNN");
        assert_eq!(results[0].dataset, datasets[0].name);
        assert_eq!(results[1].dataset, datasets[1].name);
    }

    #[test]
    fn matrix_deterministic_across_thread_counts() {
        let datasets = vec![fig5_dataset(AnomalyType::Global, 3)];
        let kinds = [DetectorKind::Hbos];
        let mut cfg = quick_cfg();
        cfg.n_threads = 1;
        let a = run_matrix(&kinds, &datasets, &cfg);
        cfg.n_threads = 4;
        let b = run_matrix(&kinds, &datasets, &cfg);
        assert_eq!(a[0].booster_auc, b[0].booster_auc);
    }

    #[test]
    fn summary_aggregates_correctly() {
        let results = vec![
            PairResult {
                dataset: "a".into(),
                model: "HBOS",
                teacher_auc: 0.6,
                teacher_ap: 0.3,
                booster_auc: 0.7,
                booster_ap: 0.35,
                iter_auc: vec![0.7],
                iter_ap: vec![0.35],
            },
            PairResult {
                dataset: "b".into(),
                model: "HBOS",
                teacher_auc: 0.8,
                teacher_ap: 0.5,
                booster_auc: 0.75,
                booster_ap: 0.55,
                iter_auc: vec![0.75],
                iter_ap: vec![0.55],
            },
        ];
        let s = summarize_model(&results, "HBOS", Metric::AucRoc);
        assert!((s.original - 0.7).abs() < 1e-12);
        assert!((s.improvement - 0.025).abs() < 1e-12);
        assert_eq!(s.effects, 1);
        assert_eq!(s.n_datasets, 2);
        let ap = summarize_model(&results, "HBOS", Metric::Ap);
        assert!((ap.original - 0.4).abs() < 1e-12);
        assert_eq!(ap.effects, 2);
    }

    #[test]
    fn scheme_runner_covers_all_schemes() {
        let d = fig5_dataset(AnomalyType::Global, 4);
        let schemes = BoosterScheme::ALL;
        let r = run_pair_schemes(DetectorKind::Knn, &d, &schemes, &quick_cfg());
        assert_eq!(r.len(), 6);
        let names: Vec<&str> = r.iter().map(|s| s.scheme).collect();
        assert!(names.contains(&"UADB"));
        assert!(names.contains(&"Origin"));
        for s in &r {
            assert!(s.auc > 0.0 && s.auc <= 1.0, "{}: {}", s.scheme, s.auc);
        }
    }
}
