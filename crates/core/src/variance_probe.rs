//! The variance evidence of §III-B: anomalies exhibit higher prediction
//! variance between a teacher and its naive imitation learner (Figs. 1
//! and 2 of the paper).

use crate::booster::{UadbConfig, UadbError};
use crate::variants::BoosterScheme;
use uadb_data::preprocess::minmax_vec;
use uadb_data::Dataset;
use uadb_linalg::vecops::population_variance;

/// Per-dataset variance evidence.
#[derive(Debug, Clone)]
pub struct VarianceEvidence {
    /// Dataset name.
    pub dataset: String,
    /// Per-instance variance between teacher and student predictions.
    pub per_instance: Vec<f64>,
    /// Mean variance of ground-truth inliers.
    pub mean_normal: f64,
    /// Mean variance of ground-truth anomalies.
    pub mean_abnormal: f64,
}

impl VarianceEvidence {
    /// The paper's Fig. 2 quantity:
    /// `(v̄_normal − v̄_abnormal) / v̄_abnormal`. Negative values mean
    /// anomalies have the higher variance (true on 71/84 datasets there).
    pub fn relative_difference(&self) -> f64 {
        if self.mean_abnormal <= 0.0 {
            return 0.0;
        }
        (self.mean_normal - self.mean_abnormal) / self.mean_abnormal
    }

    /// Whether the core hypothesis holds on this dataset.
    pub fn anomalies_have_higher_variance(&self) -> bool {
        self.mean_abnormal > self.mean_normal
    }
}

/// Runs the Fig. 1/2 probe: fits a *static* imitation learner (a Naive
/// Booster — no error correction) against the teacher's pseudo labels,
/// then measures `variance([f_S(x_i), f_B(x_i)])` per instance.
///
/// `teacher_scores` are raw detector outputs on `data.x`.
pub fn probe(
    data: &Dataset,
    teacher_scores: &[f64],
    cfg: &UadbConfig,
) -> Result<VarianceEvidence, UadbError> {
    let student = BoosterScheme::Naive.run(&data.x, teacher_scores, cfg)?;
    let teacher = minmax_vec(teacher_scores);
    let per_instance: Vec<f64> =
        teacher.iter().zip(&student).map(|(&t, &s)| population_variance(&[t, s])).collect();
    let mut sum_normal = 0.0;
    let mut n_normal = 0usize;
    let mut sum_abnormal = 0.0;
    let mut n_abnormal = 0usize;
    for (&v, &l) in per_instance.iter().zip(&data.labels) {
        if l == 1 {
            sum_abnormal += v;
            n_abnormal += 1;
        } else {
            sum_normal += v;
            n_normal += 1;
        }
    }
    Ok(VarianceEvidence {
        dataset: data.name.clone(),
        per_instance,
        mean_normal: if n_normal > 0 { sum_normal / n_normal as f64 } else { 0.0 },
        mean_abnormal: if n_abnormal > 0 { sum_abnormal / n_abnormal as f64 } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};
    use uadb_detectors::DetectorKind;

    #[test]
    fn probe_produces_per_instance_variances() {
        let d = fig5_dataset(AnomalyType::Global, 0).standardized();
        let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
        let ev = probe(&d, &teacher, &UadbConfig::fast_for_tests(0)).unwrap();
        assert_eq!(ev.per_instance.len(), d.n_samples());
        assert!(ev.per_instance.iter().all(|&v| (0.0..=0.25 + 1e-12).contains(&v)));
        assert!(ev.mean_normal >= 0.0 && ev.mean_abnormal >= 0.0);
    }

    #[test]
    fn anomalies_show_higher_variance_on_hard_types() {
        // The paper's key empirical claim. Clustered anomalies fool
        // IForest, so the imitation gap concentrates on them.
        let d = fig5_dataset(AnomalyType::Clustered, 1).standardized();
        let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
        let cfg = UadbConfig { t_steps: 6, ..UadbConfig::fast_for_tests(1) };
        let ev = probe(&d, &teacher, &cfg).unwrap();
        assert!(
            ev.anomalies_have_higher_variance(),
            "normal {} vs abnormal {}",
            ev.mean_normal,
            ev.mean_abnormal
        );
        assert!(ev.relative_difference() < 0.0);
    }

    #[test]
    fn relative_difference_degenerate() {
        let ev = VarianceEvidence {
            dataset: "x".into(),
            per_instance: vec![],
            mean_normal: 0.1,
            mean_abnormal: 0.0,
        };
        assert_eq!(ev.relative_difference(), 0.0);
    }
}
