//! Algorithm 1 of the paper: iterative pseudo-supervised distillation
//! with variance-based error correction.

use std::fmt;
use uadb_data::preprocess::minmax_vec;
use uadb_data::splits::kfold;
use uadb_linalg::Matrix;
use uadb_nn::{train_regression, AdamParams, ForwardScratch, Mlp, MlpConfig, ProgressHook, TrainConfig};

/// Scale on which the per-instance dispersion enters the pseudo-label
/// update `ŷ(t+1) = MinMaxScale(ŷ(t) + v̂)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionScale {
    /// Raw population variance — the paper's formula at paper scale.
    Variance,
    /// Standard deviation (√variance) — the same statistic rescaled.
    ///
    /// At the simulated suite's size the boosters track their teachers
    /// far more tightly than paper-scale students do (small n, many
    /// updates), so raw variances land near 1e-3 and the correction
    /// cannot re-order anything before min-max recompression absorbs it.
    /// The √ rescaling restores the paper's effective drip magnitude
    /// (≈0.05–0.1 per step for anomalies) without changing which points
    /// get corrected. The `ablation_cv` bench measures both scales.
    StdDev,
}

/// Configuration of the UADB booster. Defaults are the paper's §IV-A
/// setup verbatim.
#[derive(Debug, Clone)]
pub struct UadbConfig {
    /// Number of UADB steps `T` (paper: 10).
    pub t_steps: usize,
    /// Booster training epochs per step (paper: 10).
    pub epochs_per_step: usize,
    /// Mini-batch size (paper: 256).
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-3).
    pub learning_rate: f64,
    /// Hidden layer widths (paper: `[128, 128]` — a "3-layer" MLP).
    pub hidden: Vec<usize>,
    /// Cross-validation booster count (paper: 3). `1` disables the
    /// ensemble (used by the CV ablation bench).
    pub cv_folds: usize,
    /// Keep booster weights across steps (`true`, the default) or
    /// re-initialise each step (`false`). Warm starting keeps the booster
    /// faithful to the accumulated pseudo labels; per-step fresh members
    /// maximise the checkpoint-instability variance signal of §III-B but
    /// under-fit the final labels at small `n` (the `ablation_cv` bench
    /// measures both).
    pub warm_start: bool,
    /// Dispersion scale of the error-correction term (see
    /// [`CorrectionScale`]).
    pub correction: CorrectionScale,
    /// Master seed for weight init, fold splits and batch shuffling.
    pub seed: u64,
    /// Optional per-epoch training observer, forwarded into every
    /// member/probe fit's [`TrainConfig`]. Observational only — weights
    /// are bit-identical with or without it — and never persisted.
    pub progress: Option<ProgressHook>,
}

impl Default for UadbConfig {
    fn default() -> Self {
        Self {
            t_steps: 10,
            epochs_per_step: 10,
            batch_size: 256,
            learning_rate: 1e-3,
            hidden: vec![128, 128],
            cv_folds: 3,
            warm_start: true,
            correction: CorrectionScale::StdDev,
            seed: 0,
            progress: None,
        }
    }
}

impl UadbConfig {
    /// Paper defaults with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A slimmed configuration for unit tests and doctests: fewer steps,
    /// narrower booster, hotter learning rate. NOT used by the benchmark
    /// harness.
    pub fn fast_for_tests(seed: u64) -> Self {
        Self {
            t_steps: 4,
            epochs_per_step: 5,
            batch_size: 64,
            learning_rate: 1e-2,
            hidden: vec![32],
            cv_folds: 3,
            seed,
            ..Self::default()
        }
    }

    /// Effective mini-batch size for `n` training rows.
    ///
    /// The paper's batch of 256 assumes ADBench-scale datasets (typically
    /// thousands of rows, i.e. ≳10 gradient updates per epoch). The
    /// simulated suite is scaled down, so a fixed 256 would leave the
    /// booster with a handful of Adam steps and it would never leave its
    /// initialisation (verified empirically; see DESIGN.md §2). Capping
    /// the batch at `n/16` keeps the *update count* per epoch at the
    /// paper's effective level while converging to the configured batch
    /// size for paper-scale inputs.
    pub fn effective_batch(&self, n: usize) -> usize {
        self.batch_size.min((n / 16).max(16)).max(1)
    }
}

/// Errors from booster fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum UadbError {
    /// Feature matrix and teacher scores disagree in length.
    LengthMismatch {
        /// Rows in the feature matrix.
        rows: usize,
        /// Teacher score count.
        scores: usize,
    },
    /// No training rows.
    EmptyInput,
}

impl fmt::Display for UadbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UadbError::LengthMismatch { rows, scores } => {
                write!(f, "feature rows ({rows}) != teacher scores ({scores})")
            }
            UadbError::EmptyInput => write!(f, "cannot boost an empty dataset"),
        }
    }
}

impl std::error::Error for UadbError {}

/// Affine score calibration fitted on the training set's final booster
/// scores and stored with the model.
///
/// Raw ensemble outputs are sigmoid activations whose occupied range
/// depends on the training run (a booster that converged to pseudo
/// labels in `[0.1, 0.6]` never emits 0.9). Calibration maps the
/// training scores onto exactly `[0, 1]` with constants **frozen at fit
/// time**, so at serving time a 1-row request scores bit-identically to
/// the same row inside a 10k-row batch — unlike re-running min-max per
/// request batch, which would rescale every score by its batch-mates.
/// Out-of-sample points may legitimately land slightly outside `[0, 1]`;
/// they are *not* clamped, preserving the ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreCalibration {
    /// Minimum raw ensemble score observed on the training set.
    pub min: f64,
    /// Occupied raw score range (guarded to stay positive).
    pub range: f64,
}

impl ScoreCalibration {
    /// Fits the constants from training-set scores. A constant or empty
    /// score vector yields the identity-width guard `range = 1`.
    ///
    /// Non-finite scores (NaN *and* ±inf) are ignored when fitting: an
    /// inf-contaminated training run must not bake `min = -inf` or
    /// `range = inf` into the model, because those constants would be
    /// rejected by persistence ([`ScoreCalibration::from_parts`]
    /// requires finite constants) and would collapse every serving-time
    /// score to NaN/0. The fitted constants are always finite, with
    /// `range > 0`. `range` is additionally guarded against overflow:
    /// `MAX - (-MAX)` rounds to `inf`, which also falls back to the
    /// identity-width guard.
    pub fn fit(scores: &[f64]) -> Self {
        let mut finite = scores.iter().copied().filter(|v| v.is_finite());
        let (mut lo, mut hi) = match finite.next() {
            Some(first) => (first, first),
            None => return Self { min: 0.0, range: 1.0 },
        };
        for v in finite {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = hi - lo;
        if range > 0.0 && range.is_finite() {
            Self { min: lo, range }
        } else {
            Self { min: lo, range: 1.0 }
        }
    }

    /// Rebuilds calibration from persisted constants.
    ///
    /// # Panics
    /// If `range` is not positive and finite or `min` is not finite.
    /// Callers deserialising untrusted data should check
    /// [`ScoreCalibration::is_valid`] first and surface a typed error
    /// instead of reaching this assertion.
    pub fn from_parts(min: f64, range: f64) -> Self {
        let cal = Self { min, range };
        assert!(cal.is_valid(), "calibration constants must be finite with positive range");
        cal
    }

    /// Whether the constants are servable: finite `min` and a positive,
    /// finite `range`. [`ScoreCalibration::fit`] always produces valid
    /// constants; hand-built or deserialised ones may not.
    pub fn is_valid(&self) -> bool {
        self.min.is_finite() && self.range > 0.0 && self.range.is_finite()
    }

    /// Applies the affine map to one raw score.
    pub fn apply(&self, raw: f64) -> f64 {
        (raw - self.min) / self.range
    }

    /// Applies the affine map in place.
    pub fn apply_vec(&self, scores: &mut [f64]) {
        for s in scores {
            *s = self.apply(*s);
        }
    }
}

/// The UADB trainer (unfitted).
#[derive(Debug, Clone)]
pub struct Uadb {
    cfg: UadbConfig,
}

/// A fitted UADB booster: the CV ensemble plus the full iteration
/// history needed by the paper's analyses (Tables V, Figs. 4/7/9).
/// `Clone` duplicates the weights, which lets serving layers derive a
/// modified bundle (e.g. attach a teacher) without mutating one that
/// in-flight requests still score against.
#[derive(Debug, Clone)]
pub struct UadbModel {
    ensemble: Vec<Mlp>,
    cfg: UadbConfig,
    /// `fB(X)` after each step `t = 1..=T` (ensemble-averaged).
    booster_history: Vec<Vec<f64>>,
    /// Pseudo labels `ŷ(1), …, ŷ(T+1)`.
    pseudo_history: Vec<Vec<f64>>,
    /// Train-time score calibration (see [`ScoreCalibration`]).
    calibration: ScoreCalibration,
}

impl Uadb {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: UadbConfig) -> Self {
        Self { cfg }
    }

    /// Runs Algorithm 1: fits the booster ensemble on `x` using the
    /// teacher's raw decision scores (any scale — they are min-max
    /// normalised into `[0,1]` pseudo labels here, as the paper does).
    pub fn fit(&self, x: &Matrix, teacher_scores: &[f64]) -> Result<UadbModel, UadbError> {
        self.fit_with(x, teacher_scores, 1)
    }

    /// [`Uadb::fit`] with `train_workers` data-parallel threads inside
    /// each booster fit (`1` = serial, `0` = all available cores). The
    /// trained model is bit-identical for every worker count — the
    /// parallel decomposition in `uadb_nn` never reorders a
    /// floating-point reduction — so this is purely a throughput knob
    /// and deliberately not part of [`UadbConfig`] (which is persisted
    /// with the model).
    pub fn fit_with(
        &self,
        x: &Matrix,
        teacher_scores: &[f64],
        train_workers: usize,
    ) -> Result<UadbModel, UadbError> {
        let n = x.rows();
        if n == 0 || x.cols() == 0 {
            return Err(UadbError::EmptyInput);
        }
        if teacher_scores.len() != n {
            return Err(UadbError::LengthMismatch { rows: n, scores: teacher_scores.len() });
        }
        let cfg = &self.cfg;

        // ŷ(1) ← MinMax(f_S(X)); Ŷ ← [ŷ(1)]
        let mut pseudo = minmax_vec(teacher_scores);
        let mut pseudo_history: Vec<Vec<f64>> = vec![pseudo.clone()];
        let mut booster_history: Vec<Vec<f64>> = Vec::with_capacity(cfg.t_steps);

        // 3-fold CV ensemble: each booster trains on 2/3 of the rows.
        let folds = kfold(n, cfg.cv_folds.max(1), cfg.seed ^ 0x5eed_f01d);
        let build_member = |f: usize, t: usize| {
            Mlp::new(&MlpConfig {
                input_dim: x.cols(),
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                activation: uadb_nn::Activation::Sigmoid,
                seed: cfg.seed.wrapping_add((f + t * 7) as u64).wrapping_mul(0x9e37_79b9),
            })
        };
        let mut ensemble: Vec<Mlp> = (0..folds.len()).map(|f| build_member(f, 0)).collect();
        // Pre-select fold training matrices once; pseudo-label slices are
        // re-gathered per step since labels change.
        let fold_x: Vec<Matrix> = folds.iter().map(|f| x.select_rows(&f.train)).collect();

        let mut fold_targets: Vec<f64> = Vec::with_capacity(n);
        for t in 1..=cfg.t_steps {
            // Train each fold booster against the current pseudo labels.
            // Without warm_start, members are re-initialised per step so
            // their outputs on structureless points fluctuate across
            // checkpoints (the §III-B variance signal).
            for (f, mlp) in ensemble.iter_mut().enumerate() {
                if !cfg.warm_start && t > 1 {
                    *mlp = build_member(f, t);
                }
                fold_targets.clear();
                fold_targets.extend(folds[f].train.iter().map(|&i| pseudo[i]));
                let tc = TrainConfig {
                    adam: AdamParams { lr: cfg.learning_rate, ..AdamParams::default() },
                    batch_size: cfg.effective_batch(fold_x[f].rows()),
                    epochs: cfg.epochs_per_step,
                    shuffle_seed: cfg
                        .seed
                        .wrapping_add((t * 31 + f) as u64)
                        .wrapping_mul(0x0100_0000_01b3),
                    workers: train_workers,
                    progress: cfg.progress.clone(),
                };
                train_regression(mlp, &fold_x[f], &fold_targets, &tc);
            }
            // Per-member predictions. The reported scores average the
            // members (§IV-A: "we average the outputs of the 3 booster
            // models"); the variance sample gets each member's prediction
            // individually, because the paper estimates variance "between
            // different learners" (§III-B) and averaging members first
            // would wash their disagreement out.
            let mut member_preds: Vec<Vec<f64>> =
                ensemble.iter().map(|mlp| mlp.predict_vec(x)).collect();
            let fb = average_columns(&member_preds, n);
            booster_history.push(fb.clone());

            // Fresh probe student: trained from scratch on the current
            // pseudo labels for one step's budget, used ONLY in the
            // variance sample, then discarded. A freshly-trained
            // checkpoint lands differently on structureless points in
            // every retrain (§III-B's "student model checkpoints at
            // different steps"), keeping the anomaly-variance signal
            // alive even after the warm ensemble has converged.
            {
                let mut probe = build_member(folds.len(), t);
                let fold = t % folds.len();
                fold_targets.clear();
                fold_targets.extend(folds[fold].train.iter().map(|&i| pseudo[i]));
                let tc = TrainConfig {
                    adam: AdamParams { lr: cfg.learning_rate, ..AdamParams::default() },
                    batch_size: cfg.effective_batch(fold_x[fold].rows()),
                    epochs: cfg.epochs_per_step,
                    shuffle_seed: cfg.seed.wrapping_add((t * 101) as u64),
                    workers: train_workers,
                    progress: cfg.progress.clone(),
                };
                train_regression(&mut probe, &fold_x[fold], &fold_targets, &tc);
                member_preds.push(probe.predict_vec(x));
            }

            // v̂ ← per-instance variance over [Ŷ, f_B(X)].
            let mut variance = vec![0.0; n];
            let mut sample = Vec::with_capacity(pseudo_history.len() + member_preds.len());
            for (i, slot) in variance.iter_mut().enumerate() {
                sample.clear();
                sample.extend(pseudo_history.iter().map(|h| h[i]));
                sample.extend(member_preds.iter().map(|p| p[i]));
                let v = uadb_linalg::vecops::population_variance(&sample);
                *slot = match cfg.correction {
                    CorrectionScale::Variance => v,
                    CorrectionScale::StdDev => v.sqrt(),
                };
            }
            // Cap at the 99th percentile: a single flip-flopping point
            // would otherwise stretch the min-max range every step and
            // compress all other pseudo labels toward zero, starving the
            // booster's MSE gradients (a small-n stabilisation; see
            // DESIGN.md §2).
            if let Some(cap) = uadb_stats::quantile(&variance, 0.99) {
                for v in &mut variance {
                    if *v > cap {
                        *v = cap;
                    }
                }
            }
            let mut next = vec![0.0; n];
            for ((nx, &p), &v) in next.iter_mut().zip(&pseudo).zip(&variance) {
                *nx = p + v;
            }
            // ŷ(t+1) ← MinMaxScale(ŷ(t) + v̂)
            pseudo = minmax_vec(&next);
            pseudo_history.push(pseudo.clone());
        }

        let calibration =
            ScoreCalibration::fit(booster_history.last().map(|v| v.as_slice()).unwrap_or(&[]));
        Ok(UadbModel { ensemble, cfg: cfg.clone(), booster_history, pseudo_history, calibration })
    }
}

/// Element-wise mean of equally-long prediction vectors.
fn average_columns(preds: &[Vec<f64>], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for p in preds {
        for (o, &v) in out.iter_mut().zip(p) {
            *o += v;
        }
    }
    let inv = 1.0 / preds.len().max(1) as f64;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Reusable workspace for [`UadbModel::score_into`] and friends: wraps
/// the booster's MLP forward scratch so repeated scoring calls (one
/// per request, per serving worker) allocate nothing once warm.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    forward: ForwardScratch,
}

impl UadbModel {
    /// Rebuilds a fitted model from persisted parts (the inverse of
    /// [`UadbModel::ensemble`] + [`UadbModel::config`] +
    /// [`UadbModel::calibration`], used by `uadb-serve`'s model files).
    ///
    /// The iteration histories are training-run artifacts and are not
    /// persisted: on a restored model [`UadbModel::scores`],
    /// [`UadbModel::booster_history`] and [`UadbModel::pseudo_history`]
    /// return empty slices, while [`UadbModel::score`] and
    /// [`UadbModel::score_calibrated`] behave bit-identically to the
    /// original model.
    ///
    /// # Panics
    /// If the ensemble is empty or its members disagree on input width.
    pub fn from_parts(ensemble: Vec<Mlp>, cfg: UadbConfig, calibration: ScoreCalibration) -> Self {
        assert!(!ensemble.is_empty(), "ensemble must have at least one member");
        let dim = ensemble[0].input_dim();
        assert!(
            ensemble.iter().all(|m| m.input_dim() == dim),
            "ensemble members must share an input dimension"
        );
        Self { ensemble, cfg, booster_history: Vec::new(), pseudo_history: Vec::new(), calibration }
    }

    /// Final booster scores on the training rows (the paper's reported
    /// predictions — the booster replaces the teacher as the final UAD
    /// model).
    ///
    /// These are **raw** ensemble-averaged sigmoid outputs, the same
    /// quantity [`UadbModel::score`] computes for arbitrary rows; both
    /// live on the scale induced by the final pseudo labels. For scores
    /// normalised onto the training set's `[0, 1]` with frozen
    /// constants — the form `uadb-serve` returns — see
    /// [`UadbModel::score_calibrated`].
    pub fn scores(&self) -> &[f64] {
        self.booster_history.last().map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Raw scores for arbitrary (e.g. held-out) rows with the fitted
    /// ensemble. Per-row and batch-size independent; on the training
    /// rows this equals [`UadbModel::scores`]. Thin wrapper over
    /// [`UadbModel::score_into`] with a one-shot scratch.
    pub fn score(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.score_into(x, &mut ScoreScratch::default(), &mut out);
        out
    }

    /// Calibrated scores for arbitrary rows: [`UadbModel::score`] mapped
    /// through the stored train-time [`ScoreCalibration`]. Because the
    /// constants are frozen at fit time, a row's calibrated score does
    /// not depend on which batch it arrives in.
    pub fn score_calibrated(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.score_calibrated_into(x, &mut ScoreScratch::default(), &mut out);
        out
    }

    /// Allocation-free raw scoring: ensemble-averaged booster outputs
    /// written into `out` (cleared and resized to `x.rows()`), with all
    /// intermediate activations living in `scratch`. Bit-identical to
    /// [`UadbModel::score`].
    ///
    /// # Panics
    /// If `x` is not as wide as the ensemble's input dimension.
    pub fn score_into(&self, x: &Matrix, scratch: &mut ScoreScratch, out: &mut Vec<f64>) {
        assert_eq!(x.cols(), self.ensemble[0].input_dim(), "feature width mismatch");
        self.score_rows_into(x.as_slice(), x.rows(), scratch, out);
    }

    /// [`UadbModel::score_into`] over a raw row-major slice of `n_rows`
    /// rows — the serving path's form, so standardised feature buffers
    /// never need a `Matrix` wrapper.
    // audit: no_alloc
    pub fn score_rows_into(
        &self,
        rows: &[f64],
        n_rows: usize,
        scratch: &mut ScoreScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        // audit: allow(alloc, grows the reused output buffer to batch size once; steady-state it is a no-op)
        out.resize(n_rows, 0.0);
        for mlp in &self.ensemble {
            let p = mlp.forward_rows(rows, n_rows, &mut scratch.forward);
            debug_assert_eq!(p.len(), n_rows, "booster head must be 1-wide");
            for (o, &v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
        let inv = 1.0 / self.ensemble.len().max(1) as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }

    /// Allocation-free calibrated scoring: [`UadbModel::score_into`]
    /// followed by the frozen train-time calibration applied in place.
    /// Bit-identical to [`UadbModel::score_calibrated`].
    pub fn score_calibrated_into(
        &self,
        x: &Matrix,
        scratch: &mut ScoreScratch,
        out: &mut Vec<f64>,
    ) {
        self.score_into(x, scratch, out);
        self.calibration.apply_vec(out);
    }

    /// Calibrated scoring over a raw row-major slice (see
    /// [`UadbModel::score_rows_into`]).
    pub fn score_calibrated_rows_into(
        &self,
        rows: &[f64],
        n_rows: usize,
        scratch: &mut ScoreScratch,
        out: &mut Vec<f64>,
    ) {
        self.score_rows_into(rows, n_rows, scratch, out);
        self.calibration.apply_vec(out);
    }

    /// The stored train-time score calibration.
    pub fn calibration(&self) -> ScoreCalibration {
        self.calibration
    }

    /// The fitted CV booster ensemble, in fold order.
    pub fn ensemble(&self) -> &[Mlp] {
        &self.ensemble
    }

    /// Booster output after each step `t = 1..=T` (Table V's `iter k`
    /// columns; Fig. 7's iteration sweep).
    pub fn booster_history(&self) -> &[Vec<f64>] {
        &self.booster_history
    }

    /// Pseudo-label history `ŷ(1), …, ŷ(T+1)` (Fig. 9's ranking traces).
    pub fn pseudo_history(&self) -> &[Vec<f64>] {
        &self.pseudo_history
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &UadbConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};
    use uadb_detectors::DetectorKind;
    use uadb_metrics::roc_auc;

    #[test]
    fn histories_have_expected_lengths() {
        let d = fig5_dataset(AnomalyType::Global, 0).standardized();
        let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
        let cfg = UadbConfig::fast_for_tests(0);
        let t = cfg.t_steps;
        let model = Uadb::new(cfg).fit(&d.x, &teacher).unwrap();
        assert_eq!(model.booster_history().len(), t);
        assert_eq!(model.pseudo_history().len(), t + 1);
        assert_eq!(model.scores().len(), d.n_samples());
    }

    #[test]
    fn pseudo_labels_stay_in_unit_interval() {
        let d = fig5_dataset(AnomalyType::Local, 1).standardized();
        let teacher = DetectorKind::Knn.build(0).fit_score(&d.x).unwrap();
        let model = Uadb::new(UadbConfig::fast_for_tests(1)).fit(&d.x, &teacher).unwrap();
        for h in model.pseudo_history() {
            assert!(h.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
        for h in model.booster_history() {
            assert!(h.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn boosts_a_weak_teacher_on_clustered_anomalies() {
        // IForest struggles on clustered anomalies (paper Fig. 5 row 1);
        // UADB should improve its AUC.
        let d = fig5_dataset(AnomalyType::Clustered, 3).standardized();
        let labels = d.labels_f64();
        let teacher = DetectorKind::IForest.build(2).fit_score(&d.x).unwrap();
        let teacher_auc = roc_auc(&labels, &teacher);
        let cfg = UadbConfig { t_steps: 8, ..UadbConfig::fast_for_tests(3) };
        let model = Uadb::new(cfg).fit(&d.x, &teacher).unwrap();
        let booster_auc = roc_auc(&labels, model.scores());
        // The deliberately tiny test config trades fidelity for speed;
        // the bound only guards against ranking collapse (cf. the
        // full-size shape checks in tests/reproduction.rs).
        assert!(
            booster_auc > teacher_auc - 0.10,
            "booster {booster_auc:.3} collapsed below teacher {teacher_auc:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = fig5_dataset(AnomalyType::Dependency, 5).standardized();
        let teacher = DetectorKind::Ecod.build(0).fit_score(&d.x).unwrap();
        let a = Uadb::new(UadbConfig::fast_for_tests(7)).fit(&d.x, &teacher).unwrap();
        let b = Uadb::new(UadbConfig::fast_for_tests(7)).fit(&d.x, &teacher).unwrap();
        assert_eq!(a.scores(), b.scores());
        let c = Uadb::new(UadbConfig::fast_for_tests(8)).fit(&d.x, &teacher).unwrap();
        assert_ne!(a.scores(), c.scores());
    }

    #[test]
    fn out_of_sample_scoring_works() {
        let d = fig5_dataset(AnomalyType::Global, 2).standardized();
        let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
        let model = Uadb::new(UadbConfig::fast_for_tests(0)).fit(&d.x, &teacher).unwrap();
        let q = d.x.select_rows(&[0, 1, 2]);
        let s = model.score(&q);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn error_cases() {
        let cfg = UadbConfig::fast_for_tests(0);
        let x = Matrix::zeros(0, 2);
        let err = Uadb::new(cfg.clone()).fit(&x, &[]).err().unwrap();
        assert_eq!(err, UadbError::EmptyInput);
        let x = Matrix::zeros(3, 2);
        let err = Uadb::new(cfg).fit(&x, &[0.5]).err().unwrap();
        assert!(matches!(err, UadbError::LengthMismatch { rows: 3, scores: 1 }));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn single_fold_config_works() {
        let d = fig5_dataset(AnomalyType::Global, 4).standardized();
        let teacher = DetectorKind::Knn.build(0).fit_score(&d.x).unwrap();
        let cfg = UadbConfig { cv_folds: 1, ..UadbConfig::fast_for_tests(0) };
        let model = Uadb::new(cfg).fit(&d.x, &teacher).unwrap();
        assert_eq!(model.scores().len(), d.n_samples());
    }

    #[test]
    fn calibration_is_batch_size_independent() {
        let d = fig5_dataset(AnomalyType::Global, 8).standardized();
        let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
        let model = Uadb::new(UadbConfig::fast_for_tests(0)).fit(&d.x, &teacher).unwrap();
        // Training scores map onto exactly [0, 1].
        let cal = model.calibration();
        let calibrated = model.score_calibrated(&d.x);
        let lo = calibrated.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = calibrated.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo.abs() < 1e-12 && (hi - 1.0).abs() < 1e-12, "[{lo}, {hi}]");
        // A 1-row batch scores bit-identically to the row inside the
        // full batch (the serving invariant).
        let single = model.score_calibrated(&d.x.select_rows(&[5]));
        assert_eq!(single[0].to_bits(), calibrated[5].to_bits());
        // Round trip through persisted constants.
        let rebuilt = ScoreCalibration::from_parts(cal.min, cal.range);
        assert_eq!(rebuilt, cal);
    }

    #[test]
    fn calibration_fit_survives_poisoned_scores() {
        // Inf-contaminated training scores must not bake non-finite
        // constants into the model (save would then write a file that
        // every loader rejects).
        let poisoned = [0.25, f64::INFINITY, 0.75, f64::NAN, 0.5, f64::NEG_INFINITY];
        let cal = ScoreCalibration::fit(&poisoned);
        assert!(cal.is_valid(), "fit produced {cal:?}");
        assert_eq!(cal.min, 0.25);
        assert_eq!(cal.range, 0.5);
        // All-poisoned input falls back to the identity-width guard.
        let cal = ScoreCalibration::fit(&[f64::NAN, f64::INFINITY]);
        assert!(cal.is_valid());
        assert_eq!((cal.min, cal.range), (0.0, 1.0));
        // A finite range that overflows to inf also falls back.
        let cal = ScoreCalibration::fit(&[f64::MAX, -f64::MAX]);
        assert!(cal.is_valid(), "overflowing range produced {cal:?}");
        assert_eq!(cal.range, 1.0);
        // And hand-built garbage is detectable before from_parts panics.
        assert!(!ScoreCalibration { min: f64::NEG_INFINITY, range: 1.0 }.is_valid());
        assert!(!ScoreCalibration { min: 0.0, range: f64::INFINITY }.is_valid());
        assert!(!ScoreCalibration { min: 0.0, range: 0.0 }.is_valid());
        assert!(!ScoreCalibration { min: 0.0, range: f64::NAN }.is_valid());
    }

    #[test]
    fn from_parts_restores_scoring_exactly() {
        let d = fig5_dataset(AnomalyType::Local, 9).standardized();
        let teacher = DetectorKind::Knn.build(0).fit_score(&d.x).unwrap();
        let model = Uadb::new(UadbConfig::fast_for_tests(4)).fit(&d.x, &teacher).unwrap();
        let restored = UadbModel::from_parts(
            model.ensemble().to_vec(),
            model.config().clone(),
            model.calibration(),
        );
        assert_eq!(model.score(&d.x), restored.score(&d.x));
        assert_eq!(model.score_calibrated(&d.x), restored.score_calibrated(&d.x));
        // Histories are training artifacts and deliberately absent.
        assert!(restored.scores().is_empty());
        assert!(restored.booster_history().is_empty());
        // On the training rows, score() equals the recorded final scores.
        assert_eq!(model.score(&d.x), model.scores());
    }

    #[test]
    fn variance_correction_moves_pseudo_labels() {
        let d = fig5_dataset(AnomalyType::Clustered, 6).standardized();
        let teacher = DetectorKind::IForest.build(1).fit_score(&d.x).unwrap();
        let model = Uadb::new(UadbConfig::fast_for_tests(2)).fit(&d.x, &teacher).unwrap();
        let first = &model.pseudo_history()[0];
        let last = model.pseudo_history().last().unwrap();
        let moved = first.iter().zip(last).filter(|(a, b)| (**a - **b).abs() > 0.05).count();
        assert!(moved > 0, "error correction must adjust some pseudo labels");
    }
}
