//! Cross-detector integration tests: every one of the 14 models must
//! fit and score the simulated suite data, behave deterministically, and
//! beat random ranking on an easy global-anomaly dataset.

use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::roc_auc;

#[test]
fn every_detector_scores_suite_dataset_finite() {
    let d = generate_by_name("12_glass", SuiteScale::Quick, 0).unwrap().standardized();
    for kind in DetectorKind::ALL {
        let mut det = kind.build(7);
        let scores = det.fit_score(&d.x).unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        assert_eq!(scores.len(), d.n_samples(), "{}", kind.name());
        assert!(scores.iter().all(|s| s.is_finite()), "{} produced non-finite scores", kind.name());
        // Scores must not be constant — a constant detector carries no
        // ranking information for the booster to distil.
        let (lo, hi) = uadb_linalg::vecops::min_max(&scores).unwrap();
        assert!(hi > lo, "{} produced constant scores", kind.name());
    }
}

#[test]
fn every_detector_beats_random_on_global_anomalies() {
    // Global anomalies (uniform over an inflated box) are the easiest
    // type: all 14 assumption families should comfortably beat AUC 0.5.
    let d = fig5_dataset(AnomalyType::Global, 42).standardized();
    let labels = d.labels_f64();
    for kind in DetectorKind::ALL {
        let mut det = kind.build(3);
        let scores = det.fit_score(&d.x).unwrap();
        let auc = roc_auc(&labels, &scores);
        assert!(auc > 0.6, "{} AUC {auc:.3} should exceed 0.6 on global anomalies", kind.name());
    }
}

#[test]
fn detectors_are_deterministic_given_seed() {
    let d = generate_by_name("39_thyroid", SuiteScale::Quick, 1).unwrap().standardized();
    for kind in DetectorKind::ALL {
        let a = kind.build(11).fit_score(&d.x).unwrap();
        let b = kind.build(11).fit_score(&d.x).unwrap();
        assert_eq!(a, b, "{} is not deterministic", kind.name());
    }
}

#[test]
fn out_of_sample_scoring_matches_dimensions() {
    let d = fig5_dataset(AnomalyType::Clustered, 5).standardized();
    let train = d.x.select_rows(&(0..400).collect::<Vec<_>>());
    let query = d.x.select_rows(&(400..500).collect::<Vec<_>>());
    for kind in DetectorKind::ALL {
        let mut det = kind.build(0);
        det.fit(&train).unwrap();
        let scores = det.score(&query).unwrap();
        assert_eq!(scores.len(), 100, "{}", kind.name());
        assert!(scores.iter().all(|s| s.is_finite()), "{}", kind.name());
    }
}

#[test]
fn no_universal_winner_on_heterogeneous_types() {
    // The paper's core motivation: different assumption families win on
    // different anomaly types. Verify the best model differs across at
    // least two of the four synthetic types.
    let mut winners = Vec::new();
    for seed in [9u64, 10, 11] {
        for ty in AnomalyType::ALL {
            let d = fig5_dataset(ty, seed).standardized();
            let labels = d.labels_f64();
            let mut best = ("", f64::NEG_INFINITY);
            for kind in [
                DetectorKind::IForest,
                DetectorKind::Hbos,
                DetectorKind::Lof,
                DetectorKind::Knn,
                DetectorKind::Pca,
                DetectorKind::Gmm,
            ] {
                let scores = kind.build(1).fit_score(&d.x).unwrap();
                let auc = roc_auc(&labels, &scores);
                if auc > best.1 {
                    best = (kind.name(), auc);
                }
            }
            winners.push(best.0);
        }
    }
    winners.sort_unstable();
    winners.dedup();
    assert!(
        winners.len() >= 2,
        "expected distinct winners across anomaly types/seeds, got {winners:?}"
    );
}
