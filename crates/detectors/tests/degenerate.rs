//! Failure-injection tests: every detector must either fit degenerate
//! inputs with finite scores or refuse with a typed error — never panic,
//! never emit NaN.

use uadb_detectors::{DetectorError, DetectorKind};
use uadb_linalg::Matrix;

/// Runs one detector on one input, asserting the no-panic/no-NaN
/// contract.
fn check(kind: DetectorKind, x: &Matrix, label: &str) {
    let mut det = kind.build(0);
    match det.fit(x) {
        Ok(()) => {
            let scores = det.score(x).unwrap_or_else(|e| {
                panic!("{} scored Err after Ok fit on {label}: {e}", kind.name())
            });
            assert_eq!(scores.len(), x.rows(), "{} on {label}", kind.name());
            assert!(
                scores.iter().all(|s| s.is_finite()),
                "{} produced non-finite scores on {label}",
                kind.name()
            );
        }
        Err(
            DetectorError::EmptyInput | DetectorError::NoConvergence(_) | DetectorError::Linalg(_),
        ) => {} // refusing degenerate input is acceptable
        Err(e) => panic!("{} unexpected error on {label}: {e}", kind.name()),
    }
}

#[test]
fn constant_matrix() {
    let x = Matrix::filled(30, 4, 2.5);
    for kind in DetectorKind::ALL {
        check(kind, &x, "constant matrix");
    }
}

#[test]
fn two_samples_only() {
    let x = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
    for kind in DetectorKind::ALL {
        check(kind, &x, "two samples");
    }
}

#[test]
fn single_feature() {
    let x = Matrix::from_vec(40, 1, (0..40).map(|i| (i % 7) as f64).collect()).unwrap();
    for kind in DetectorKind::ALL {
        check(kind, &x, "single feature");
    }
}

#[test]
fn more_features_than_samples() {
    // 8 samples in 20 dimensions: covariance is rank-deficient, kNN
    // neighbourhoods are tiny — the classic small-data pathology.
    let x =
        Matrix::from_vec(8, 20, (0..160).map(|i| ((i * 37) % 23) as f64 * 0.1).collect()).unwrap();
    for kind in DetectorKind::ALL {
        check(kind, &x, "d > n");
    }
}

#[test]
fn heavy_duplicates() {
    // 90% identical rows: zero distances everywhere for the neighbour
    // family, empty histogram bins for the density family.
    let mut rows = vec![vec![1.0, -1.0, 0.5]; 45];
    for i in 0..5 {
        rows.push(vec![i as f64, i as f64 * 2.0, -(i as f64)]);
    }
    let x = Matrix::from_rows(&rows).unwrap();
    for kind in DetectorKind::ALL {
        check(kind, &x, "heavy duplicates");
    }
}

#[test]
fn extreme_scale_features() {
    // One feature in [0, 1e9], one in [0, 1e-9]: detectors must not
    // overflow (callers standardise in the pipeline, but the library
    // itself must stay finite).
    let mut rows = Vec::with_capacity(40);
    for i in 0..40 {
        rows.push(vec![i as f64 * 2.5e7, i as f64 * 2.5e-11]);
    }
    let x = Matrix::from_rows(&rows).unwrap();
    for kind in DetectorKind::ALL {
        check(kind, &x, "extreme scales");
    }
}

#[test]
fn booster_handles_degenerate_teacher_scores() {
    // Constant teacher scores min-max to all zeros: UADB must still fit
    // and return finite scores (it just has nothing to correct).
    let x = Matrix::from_vec(30, 2, (0..60).map(|i| (i % 13) as f64 * 0.3).collect()).unwrap();
    let teacher = vec![0.5; 30];
    let model = uadb_boost(&x, &teacher);
    assert!(model.iter().all(|s| s.is_finite()));
}

/// Minimal booster invocation without dragging the core crate into dev
/// dependencies of the detectors crate — uses the nn stack directly the
/// way `uadb::variants::train_static` does.
fn uadb_boost(x: &Matrix, teacher: &[f64]) -> Vec<f64> {
    use uadb_nn::{train_regression, Activation, Mlp, MlpConfig, TrainConfig};
    let mut mlp = Mlp::new(&MlpConfig {
        input_dim: x.cols(),
        hidden: vec![8],
        output_dim: 1,
        activation: Activation::Sigmoid,
        seed: 0,
    });
    let cfg = TrainConfig { epochs: 3, batch_size: 8, ..TrainConfig::default() };
    train_regression(&mut mlp, x, teacher, &cfg);
    mlp.predict_vec(x)
}
