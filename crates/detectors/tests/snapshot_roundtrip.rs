//! The detector-snapshot round-trip suite: for **every** detector,
//! fit → save → load must reproduce held-out query scores
//! **bit-identically** — raw floats travel as IEEE-754 bits, so not a
//! single ULP may move. Alongside the per-kind bit-identity checks:
//! canonical re-serialisation, randomised shapes/hyper-parameters for
//! IForest/PCA/HBOS/ECOD, and the error paths (truncation, corruption,
//! NaN-poisoned state) that must yield typed errors, never panics.

use proptest::prelude::*;
use uadb_detectors::snapshot::{self, SnapshotError};
use uadb_detectors::{Detector, DetectorKind};
use uadb_linalg::Matrix;

/// Deterministic pseudo-random training cloud: a dense blob with a few
/// far-out rows, enough structure for every detector family to fit.
fn train_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rows = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            let base = next() + (j as f64) * 0.25;
            // Every 13th row drifts away from the blob: anomalies keep
            // tree splits, tail tables and cluster structure non-trivial.
            let offset = if i % 13 == 12 { 6.0 + next() } else { 0.0 };
            row.push(base + offset);
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows).unwrap()
}

/// Held-out queries spanning the blob, the anomaly shell and far space.
fn query_matrix(d: usize, seed: u64) -> Matrix {
    let mut rows = Vec::new();
    for i in 0..9 {
        let scale = [0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, -3.0, 0.0][i];
        rows.push((0..d).map(|j| scale + j as f64 * 0.5 + (seed % 7) as f64 * 0.01).collect());
    }
    Matrix::from_rows(&rows).unwrap()
}

/// Fit, snapshot, reload, and demand bit-identical scores on held-out
/// queries (and on the training rows themselves).
fn assert_round_trip(kind: DetectorKind, x: &Matrix, q: &Matrix, seed: u64) {
    let mut det = snapshot::build(kind, seed);
    det.fit(x).unwrap_or_else(|e| panic!("{} failed to fit: {e}", kind.name()));
    let bytes = snapshot::save_to_vec(det.as_ref())
        .unwrap_or_else(|e| panic!("{} failed to save: {e}", kind.name()));
    let loaded = snapshot::load(&bytes[..])
        .unwrap_or_else(|e| panic!("{} failed to load: {e}", kind.name()));
    assert_eq!(loaded.kind(), kind);
    assert_eq!(loaded.fitted_dim(), x.cols(), "{}", kind.name());

    for (label, batch) in [("query", q), ("train", x)] {
        let a = det.score(batch).unwrap();
        let b = loaded.score(batch).unwrap();
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{} {label} row {i}: {x} vs {y}", kind.name());
        }
    }

    // Canonical encoding: saving the loaded detector reproduces the
    // exact bytes (double round trips can never drift).
    let again = snapshot::save_to_vec(loaded.as_ref()).unwrap();
    assert_eq!(bytes, again, "{} re-serialisation drifted", kind.name());
}

#[test]
fn every_detector_round_trips_bit_identically() {
    let x = train_matrix(64, 3, 5);
    let q = query_matrix(3, 5);
    for kind in DetectorKind::ALL {
        assert_round_trip(kind, &x, &q, 11);
    }
}

#[test]
fn every_detector_round_trips_in_one_dimension() {
    // d = 1 exercises the degenerate subspace/projection paths.
    let x = train_matrix(48, 1, 9);
    let q = query_matrix(1, 9);
    for kind in DetectorKind::ALL {
        assert_round_trip(kind, &x, &q, 3);
    }
}

#[test]
fn truncated_snapshots_are_typed_errors_for_every_kind() {
    let x = train_matrix(40, 2, 1);
    for kind in DetectorKind::ALL {
        let mut det = snapshot::build(kind, 2);
        det.fit(&x).unwrap();
        let bytes = snapshot::save_to_vec(det.as_ref()).unwrap();
        // Cutting anywhere strictly inside the payload must error —
        // never panic, hang, or return a half-detector. (Prime stride
        // keeps the sweep fast while hitting every payload region.)
        for cut in (0..bytes.len().saturating_sub(1)).step_by(131) {
            assert!(
                snapshot::load(&bytes[..cut]).is_err(),
                "{} accepted a snapshot cut at {cut}/{}",
                kind.name(),
                bytes.len()
            );
        }
    }
}

#[test]
fn nan_poisoned_fitted_state_is_rejected_at_save_time() {
    // Training-set-carrying detectors snapshot their training rows
    // verbatim; a NaN smuggled through fit() must be caught by save, not
    // written to disk for every future load to reject.
    let mut x = train_matrix(30, 2, 4);
    x.set(3, 1, f64::NAN);
    for kind in [DetectorKind::Knn, DetectorKind::Lof, DetectorKind::Cof, DetectorKind::Sod] {
        let mut det = snapshot::build(kind, 0);
        det.fit(&x).unwrap();
        assert!(
            matches!(snapshot::save_to_vec(det.as_ref()), Err(SnapshotError::InvalidState(_))),
            "{} wrote NaN-bearing state",
            kind.name()
        );
    }
}

#[test]
fn flipped_kind_tag_still_fails_closed() {
    // Reinterpreting one detector's payload as another kind must yield
    // an error (or at worst a validly-parsed detector, for kinds sharing
    // a layout like ECOD/COPOD) — never a panic.
    let x = train_matrix(40, 2, 8);
    let mut det = snapshot::build(DetectorKind::Hbos, 0);
    det.fit(&x).unwrap();
    let bytes = snapshot::save_to_vec(det.as_ref()).unwrap();
    for tag in 0u8..=20 {
        let mut forged = bytes.clone();
        forged[0] = tag;
        let _ = snapshot::load(&forged[..]); // must not panic
    }
}

#[test]
fn corrupted_index_fields_cannot_cause_out_of_bounds() {
    // IForest's child pointers and split features are the memory-unsafe
    // corruption surface: flip bytes across the whole payload and demand
    // that whatever loads still scores without panicking.
    let x = train_matrix(50, 3, 6);
    let q = query_matrix(3, 6);
    let mut det = snapshot::build(DetectorKind::IForest, 7);
    det.fit(&x).unwrap();
    let bytes = snapshot::save_to_vec(det.as_ref()).unwrap();
    for pos in (1..bytes.len()).step_by(97) {
        let mut forged = bytes.clone();
        forged[pos] ^= 0xff;
        if let Ok(loaded) = snapshot::load(&forged[..]) {
            let _ = loaded.score(&q); // may err, must not panic
        }
    }
}

fn bits_of(scores: &[f64]) -> Vec<u64> {
    scores.iter().map(|s| s.to_bits()).collect()
}

proptest! {
    #[test]
    fn iforest_random_shapes_and_hyperparams(
        n in 16usize..96,
        d in 1usize..6,
        n_estimators in 3usize..40,
        max_samples in 4usize..80,
        seed in 0u64..1000,
    ) {
        let x = train_matrix(n, d, seed);
        let q = query_matrix(d, seed);
        let mut det = uadb_detectors::iforest::IForest::with_seed(seed);
        det.n_estimators = n_estimators;
        det.max_samples = max_samples;
        det.fit(&x).unwrap();
        let bytes = snapshot::save_to_vec(&det).unwrap();
        let loaded = snapshot::load(&bytes[..]).unwrap();
        prop_assert_eq!(bits_of(&det.score(&q).unwrap()), bits_of(&loaded.score(&q).unwrap()));
    }

    #[test]
    fn pca_random_shapes(n in 8usize..96, d in 1usize..8, seed in 0u64..1000) {
        let x = train_matrix(n.max(d + 2), d, seed);
        let q = query_matrix(d, seed);
        let mut det = uadb_detectors::pca::Pca::default();
        det.fit(&x).unwrap();
        let bytes = snapshot::save_to_vec(&det).unwrap();
        let loaded = snapshot::load(&bytes[..]).unwrap();
        prop_assert_eq!(bits_of(&det.score(&q).unwrap()), bits_of(&loaded.score(&q).unwrap()));
    }

    #[test]
    fn hbos_random_shapes_and_hyperparams(
        n in 4usize..120,
        d in 1usize..7,
        n_bins in 1usize..25,
        alpha in 0.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let x = train_matrix(n, d, seed);
        let q = query_matrix(d, seed);
        let mut det = uadb_detectors::hbos::Hbos::default();
        det.n_bins = n_bins;
        det.alpha = alpha;
        det.fit(&x).unwrap();
        let bytes = snapshot::save_to_vec(&det).unwrap();
        let loaded = snapshot::load(&bytes[..]).unwrap();
        prop_assert_eq!(bits_of(&det.score(&q).unwrap()), bits_of(&loaded.score(&q).unwrap()));
    }

    #[test]
    fn ecod_random_shapes(n in 2usize..150, d in 1usize..9, seed in 0u64..1000) {
        let x = train_matrix(n, d, seed);
        let q = query_matrix(d, seed);
        let mut det = uadb_detectors::ecod::Ecod::default();
        det.fit(&x).unwrap();
        let bytes = snapshot::save_to_vec(&det).unwrap();
        let loaded = snapshot::load(&bytes[..]).unwrap();
        prop_assert_eq!(bits_of(&det.score(&q).unwrap()), bits_of(&loaded.score(&q).unwrap()));
    }
}
