//! Lloyd's k-means with k-means++ initialisation.
//!
//! Substrate for CBLOF (cluster assignment) and the GMM initialiser.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use uadb_linalg::distance::sq_euclidean;
use uadb_linalg::Matrix;

/// Fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, one per row.
    pub centroids: Matrix,
    /// Assignment of each training row to a centroid.
    pub assignment: Vec<usize>,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

/// Runs k-means; `k` is clamped to the number of rows.
///
/// # Panics
/// If `x` has no rows — callers validate emptiness first.
pub fn kmeans(x: &Matrix, k: usize, max_iter: usize, seed: u64) -> KMeans {
    let (n, d) = x.shape();
    assert!(n > 0, "kmeans on empty data");
    let k = k.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<usize> = Vec::with_capacity(k);
    centers.push(rng.gen_range(0..n));
    let mut d2 = vec![f64::INFINITY; n];
    while centers.len() < k {
        let last = *centers.last().expect("non-empty");
        for (i, slot) in d2.iter_mut().enumerate() {
            let dist = sq_euclidean(x.row(i), x.row(last));
            if dist < *slot {
                *slot = dist;
            }
        }
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centers.push(next);
    }
    let mut centroids = x.select_rows(&centers);

    let mut assignment = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _iter in 0..max_iter {
        // Assign.
        let mut new_inertia = 0.0;
        for (i, row) in x.row_iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_euclidean(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            assignment[i] = best;
            new_inertia += best_d;
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, row) in x.row_iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            let dst = sums.row_mut(c);
            for (s, &v) in dst.iter_mut().zip(row) {
                *s += v;
            }
        }
        for (c, count) in counts.iter_mut().enumerate().take(k) {
            if *count == 0 {
                // Re-seed an empty cluster at a random point.
                let pick = rng.gen_range(0..n);
                let src: Vec<f64> = x.row(pick).to_vec();
                sums.row_mut(c).copy_from_slice(&src);
                *count = 1;
            }
            let inv = 1.0 / *count as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
        centroids = sums;
        // Converged when inertia stops improving meaningfully.
        if (inertia - new_inertia).abs() <= 1e-10 * inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    let mut sizes = vec![0usize; k];
    for &a in &assignment {
        sizes[a] += 1;
    }
    KMeans { centroids, assignment, sizes, inertia }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, SnapshotError};
use std::io::{Read, Write};

impl KMeans {
    /// Serialises the fitted clustering (substrate form used by
    /// cluster-backed detectors and available to future ones): centroids,
    /// assignment, sizes and inertia, in the snapshot codec.
    pub fn write_to(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        snapshot::ensure_finite(self.centroids.as_slice(), "kmeans: non-finite centroid")?;
        if !self.inertia.is_finite() {
            return Err(SnapshotError::InvalidState("kmeans: non-finite inertia"));
        }
        if self.sizes.len() != self.centroids.rows() {
            return Err(SnapshotError::InvalidState("kmeans: sizes/centroids mismatch"));
        }
        snapshot::write_matrix(w, &self.centroids)?;
        snapshot::write_u64(w, self.assignment.len() as u64)?;
        for &a in &self.assignment {
            snapshot::write_u64(w, a as u64)?;
        }
        for &s in &self.sizes {
            snapshot::write_u64(w, s as u64)?;
        }
        snapshot::write_f64(w, self.inertia)
    }

    /// Restores a clustering written by [`KMeans::write_to`].
    pub fn read_from(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let centroids = snapshot::read_matrix(r, "kmeans centroids")?;
        if centroids.rows() == 0 || centroids.cols() == 0 {
            return Err(SnapshotError::Corrupt("kmeans: empty centroids"));
        }
        snapshot::check_finite(centroids.as_slice(), "kmeans: non-finite centroid")?;
        let k = centroids.rows();
        let n = snapshot::read_len(r, snapshot::MAX_LEN, "kmeans assignment length")?;
        let mut assignment = Vec::with_capacity(n.min(8192));
        for _ in 0..n {
            let a = snapshot::read_len(r, snapshot::MAX_LEN, "kmeans assignment")?;
            if a >= k {
                return Err(SnapshotError::Corrupt("kmeans: assignment out of range"));
            }
            assignment.push(a);
        }
        let mut sizes = Vec::with_capacity(k);
        for _ in 0..k {
            sizes.push(snapshot::read_len(r, snapshot::MAX_LEN, "kmeans cluster size")?);
        }
        let inertia = snapshot::read_f64(r)?;
        if !inertia.is_finite() {
            return Err(SnapshotError::Corrupt("kmeans: non-finite inertia"));
        }
        Ok(Self { centroids, assignment, sizes, inertia })
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn kmeans_round_trips_exactly() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2]).unwrap();
        let km = kmeans(&x, 2, 50, 7);
        let mut bytes = Vec::new();
        km.write_to(&mut bytes).unwrap();
        let back = KMeans::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(back.centroids.as_slice(), km.centroids.as_slice());
        assert_eq!(back.assignment, km.assignment);
        assert_eq!(back.sizes, km.sizes);
        assert_eq!(back.inertia.to_bits(), km.inertia.to_bits());
    }

    #[test]
    fn kmeans_corrupt_assignment_is_rejected() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.1, 9.0, 9.1]).unwrap();
        let km = kmeans(&x, 2, 50, 3);
        let mut bytes = Vec::new();
        km.write_to(&mut bytes).unwrap();
        // The first assignment slot sits after the centroid matrix
        // header+data and the assignment length field.
        let offset = 8 + 8 + 8 * km.centroids.as_slice().len() + 8;
        bytes[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            KMeans::read_from(&mut &bytes[..]),
            Err(SnapshotError::Corrupt("kmeans assignment"))
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![j, j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let x = two_blobs();
        let km = kmeans(&x, 2, 50, 0);
        assert_eq!(km.sizes.iter().sum::<usize>(), 40);
        // The two blobs must not share a cluster.
        let a0 = km.assignment[0];
        for i in (0..40).step_by(2) {
            assert_eq!(km.assignment[i], a0);
        }
        for i in (1..40).step_by(2) {
            assert_ne!(km.assignment[i], a0);
        }
        assert!(km.inertia < 1.0);
    }

    #[test]
    fn k_clamped_and_singleton_clusters() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 5.0, 10.0]).unwrap();
        let km = kmeans(&x, 10, 20, 1);
        assert_eq!(km.centroids.rows(), 3);
        assert!(km.inertia < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = two_blobs();
        let a = kmeans(&x, 3, 50, 42);
        let b = kmeans(&x, 3, 50, 42);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn centroid_is_cluster_mean() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 10.0, 11.0]).unwrap();
        let km = kmeans(&x, 2, 50, 3);
        for c in 0..2 {
            let members: Vec<f64> =
                (0..4).filter(|&i| km.assignment[i] == c).map(|i| x.get(i, 0)).collect();
            let mean = members.iter().sum::<f64>() / members.len() as f64;
            assert!((km.centroids.get(c, 0) - mean).abs() < 1e-9);
        }
    }
}
