//! Gaussian Mixture Model anomaly detection.
//!
//! PyOD's `GMM` wraps sklearn's full-covariance mixture with
//! `n_components = 1` by default; the anomaly score is the negative
//! log-likelihood. The EM loop below supports any component count (tests
//! exercise k = 2) with k-means initialisation and `reg_covar`-style
//! diagonal jitter.

use crate::kmeans::kmeans;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::lu::LuDecomposition;
use uadb_linalg::Matrix;

/// Diagonal regulariser added to every covariance (sklearn `reg_covar`).
const REG_COVAR: f64 = 1e-6;

/// One mixture component in precision form, ready for scoring.
struct Component {
    weight_ln: f64,
    mean: Vec<f64>,
    precision: Matrix,
    /// `-0.5 (d ln 2π + ln |Σ|)`.
    log_norm: f64,
}

/// The GMM detector.
pub struct Gmm {
    /// Mixture size (PyOD default 1).
    pub n_components: usize,
    /// EM iterations cap.
    pub max_iter: usize,
    seed: u64,
    components: Vec<Component>,
    n_features: usize,
}

impl Gmm {
    /// PyOD defaults with an explicit seed for the k-means initialiser.
    pub fn with_seed(seed: u64) -> Self {
        Self { n_components: 1, max_iter: 100, seed, components: Vec::new(), n_features: 0 }
    }

    /// Builder-style override of the component count (tests, ablations).
    pub fn with_components(mut self, k: usize) -> Self {
        self.n_components = k.max(1);
        self
    }

    /// Log density of one sample under one component.
    fn log_prob(comp: &Component, row: &[f64], scratch: &mut Vec<f64>) -> f64 {
        let d = comp.mean.len();
        scratch.clear();
        scratch.extend(row.iter().zip(&comp.mean).map(|(x, m)| x - m));
        // Quadratic form (x-μ)ᵀ P (x-μ).
        let mut q = 0.0;
        for i in 0..d {
            let prow = &comp.precision.as_slice()[i * d..(i + 1) * d];
            let mut acc = 0.0;
            for (p, c) in prow.iter().zip(scratch.iter()) {
                acc += p * c;
            }
            q += scratch[i] * acc;
        }
        comp.weight_ln + comp.log_norm - 0.5 * q
    }

    /// Builds a precision-form component from a mean and covariance.
    fn build_component(
        weight: f64,
        mean: Vec<f64>,
        mut cov: Matrix,
    ) -> Result<Component, DetectorError> {
        let d = mean.len();
        for i in 0..d {
            let v = cov.get(i, i) + REG_COVAR;
            cov.set(i, i, v);
        }
        let lu = LuDecomposition::new(&cov)?;
        let precision = lu.inverse()?;
        let log_det = lu.ln_abs_determinant();
        let log_norm = -0.5 * (d as f64 * (2.0 * std::f64::consts::PI).ln() + log_det);
        Ok(Component { weight_ln: weight.max(1e-300).ln(), mean, precision, log_norm })
    }
}

impl Default for Gmm {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Detector for Gmm {
    fn name(&self) -> &'static str {
        "GMM"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n < 2 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let k = self.n_components.min(n);
        self.n_features = d;

        // Responsibilities initialised from k-means hard assignment.
        let km = kmeans(x, k, 50, self.seed);
        let mut resp = Matrix::zeros(n, k);
        for (i, &a) in km.assignment.iter().enumerate() {
            resp.set(i, a, 1.0);
        }

        let mut components: Vec<Component> = Vec::new();
        let mut prev_ll = f64::NEG_INFINITY;
        let mut scratch = Vec::with_capacity(d);
        for _iter in 0..self.max_iter {
            // M step: weights, means, covariances from responsibilities.
            components.clear();
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp.get(i, c)).sum();
                let nk_safe = nk.max(1e-10);
                let mut mean = vec![0.0; d];
                for (i, row) in x.row_iter().enumerate() {
                    let r = resp.get(i, c);
                    if r == 0.0 {
                        continue;
                    }
                    for (m, &v) in mean.iter_mut().zip(row) {
                        *m += r * v;
                    }
                }
                for m in &mut mean {
                    *m /= nk_safe;
                }
                let mut cov = Matrix::zeros(d, d);
                for (i, row) in x.row_iter().enumerate() {
                    let r = resp.get(i, c);
                    if r == 0.0 {
                        continue;
                    }
                    scratch.clear();
                    scratch.extend(row.iter().zip(&mean).map(|(v, m)| v - m));
                    for a in 0..d {
                        let ca = scratch[a] * r;
                        if ca == 0.0 {
                            continue;
                        }
                        let dst = &mut cov.as_mut_slice()[a * d..(a + 1) * d];
                        for (slot, &cb) in dst.iter_mut().zip(scratch.iter()) {
                            *slot += ca * cb;
                        }
                    }
                }
                cov.scale_inplace(1.0 / nk_safe);
                components.push(Self::build_component(nk / n as f64, mean, cov)?);
            }

            // E step: responsibilities and total log-likelihood.
            let mut ll = 0.0;
            for (i, row) in x.row_iter().enumerate() {
                let logs: Vec<f64> =
                    components.iter().map(|comp| Self::log_prob(comp, row, &mut scratch)).collect();
                let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logs.iter().map(|l| (l - max).exp()).sum();
                let log_total = max + sum_exp.ln();
                ll += log_total;
                for (c, &l) in logs.iter().enumerate() {
                    resp.set(i, c, (l - log_total).exp());
                }
            }
            if (ll - prev_ll).abs() < 1e-6 * ll.abs().max(1.0) {
                break;
            }
            prev_ll = ll;
        }
        self.components = components;
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.components.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(DetectorError::DimensionMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let mut scratch = Vec::with_capacity(self.n_features);
        Ok(x.row_iter()
            .map(|row| {
                let logs: Vec<f64> = self
                    .components
                    .iter()
                    .map(|comp| Self::log_prob(comp, row, &mut scratch))
                    .collect();
                let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logs.iter().map(|l| (l - max).exp()).sum();
                -(max + sum_exp.ln())
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Gmm {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Gmm
    }

    fn fitted_dim(&self) -> usize {
        self.n_features
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.components.is_empty() {
            return Err(SnapshotError::InvalidState("gmm: not fitted"));
        }
        for comp in &self.components {
            if !(comp.weight_ln.is_finite() && comp.log_norm.is_finite()) {
                return Err(SnapshotError::InvalidState("gmm: non-finite component constant"));
            }
            snapshot::ensure_finite(&comp.mean, "gmm: non-finite mean")?;
            snapshot::ensure_finite(comp.precision.as_slice(), "gmm: non-finite precision")?;
        }
        snapshot::write_u64(w, self.n_features as u64)?;
        snapshot::write_u64(w, self.components.len() as u64)?;
        for comp in &self.components {
            snapshot::write_f64(w, comp.weight_ln)?;
            snapshot::write_f64s(w, &comp.mean)?;
            snapshot::write_matrix(w, &comp.precision)?;
            snapshot::write_f64(w, comp.log_norm)?;
        }
        Ok(())
    }
}

impl Gmm {
    /// Restores the precision-form mixture components written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_features = snapshot::read_len(r, snapshot::MAX_DIM, "gmm feature count")?;
        if n_features == 0 {
            return Err(SnapshotError::Corrupt("gmm: zero features"));
        }
        let k = snapshot::read_len(r, 1 << 16, "gmm component count")?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("gmm: no components"));
        }
        let mut components = Vec::with_capacity(k);
        for _ in 0..k {
            let weight_ln = snapshot::read_f64(r)?;
            let mean = snapshot::read_f64s(r, n_features)?;
            snapshot::check_finite(&mean, "gmm: non-finite mean")?;
            let precision = snapshot::read_matrix(r, "gmm precision matrix")?;
            if precision.shape() != (n_features, n_features) {
                return Err(SnapshotError::Corrupt("gmm: precision shape mismatch"));
            }
            snapshot::check_finite(precision.as_slice(), "gmm: non-finite precision")?;
            let log_norm = snapshot::read_f64(r)?;
            if !(weight_ln.is_finite() && log_norm.is_finite()) {
                return Err(SnapshotError::Corrupt("gmm: non-finite component constant"));
            }
            components.push(Component { weight_ln, mean, precision, log_norm });
        }
        let defaults = Gmm::default();
        Ok(Self {
            n_components: components.len(),
            max_iter: defaults.max_iter,
            seed: defaults.seed,
            components,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn gaussian_cloud(seed: u64, n: usize, cx: f64, cy: f64) -> Vec<Vec<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                vec![
                    cx + r * (2.0 * std::f64::consts::PI * u2).cos(),
                    cy + r * (2.0 * std::f64::consts::PI * u2).sin(),
                ]
            })
            .collect()
    }

    #[test]
    fn single_component_scores_distance_from_mean() {
        let mut rows = gaussian_cloud(0, 200, 0.0, 0.0);
        rows.push(vec![10.0, 10.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let s = Gmm::with_seed(0).fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 200);
    }

    #[test]
    fn two_components_fit_two_blobs() {
        let mut rows = gaussian_cloud(1, 100, 0.0, 0.0);
        rows.extend(gaussian_cloud(2, 100, 20.0, 20.0));
        let x = Matrix::from_rows(&rows).unwrap();
        let mut g = Gmm::with_seed(3).with_components(2);
        g.fit(&x).unwrap();
        // A point between the blobs scores higher (less likely) than blob
        // members.
        let q = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0], vec![20.0, 20.0]]).unwrap();
        let s = g.score(&q).unwrap();
        assert!(s[1] > s[0], "midpoint {} vs blob centre {}", s[1], s[0]);
        assert!(s[1] > s[2]);
    }

    #[test]
    fn log_likelihood_is_calibrated() {
        // For a standard 2-d Gaussian the NLL at the mean is
        // ln(2π) + 0.5 ln|Σ| ≈ ln(2π) for Σ≈I.
        let rows = gaussian_cloud(4, 3000, 0.0, 0.0);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut g = Gmm::with_seed(0);
        g.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let s = g.score(&q).unwrap();
        let expect = (2.0 * std::f64::consts::PI).ln();
        assert!((s[0] - expect).abs() < 0.2, "NLL at mean {} vs {}", s[0], expect);
    }

    #[test]
    fn near_singular_covariance_survives() {
        // Perfectly correlated features: reg_covar must rescue the fit.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, i as f64 * 2.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let s = Gmm::with_seed(0).fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guards() {
        let g = Gmm::default();
        assert_eq!(g.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut g = Gmm::default();
        assert_eq!(g.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
    }
}
