//! Brute-force k-nearest-neighbour queries.
//!
//! Shared by LOF, KNN, COF and SOD. At suite scale (n ≤ a few thousand)
//! brute force with a bounded max-heap per query beats spatial indexes
//! and is trivially exact.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use uadb_linalg::distance::sq_euclidean;
use uadb_linalg::Matrix;

/// Max-heap entry so the heap evicts the *largest* distance first.
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    idx: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.idx.cmp(&other.idx))
    }
}

/// Nearest-neighbour result for one query: indices and distances sorted
/// ascending by distance.
#[derive(Debug, Clone)]
pub struct Neighbors {
    /// Indices into the reference set.
    pub indices: Vec<usize>,
    /// Euclidean distances, ascending.
    pub distances: Vec<f64>,
}

/// k nearest rows of `train` for each row of `queries`.
///
/// `exclude_self_index`: when the queries *are* the training rows, pass
/// `true` to skip the trivial zero-distance self match by row index.
/// `k` is clamped to the number of available neighbours.
pub fn knn_search(
    train: &Matrix,
    queries: &Matrix,
    k: usize,
    exclude_self_index: bool,
) -> Vec<Neighbors> {
    debug_assert_eq!(train.cols(), queries.cols(), "dimension mismatch");
    let n_train = train.rows();
    let avail = if exclude_self_index { n_train.saturating_sub(1) } else { n_train };
    let k = k.min(avail).max(1.min(avail));
    let mut out = Vec::with_capacity(queries.rows());
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    for (qi, qrow) in queries.row_iter().enumerate() {
        heap.clear();
        for ti in 0..n_train {
            if exclude_self_index && ti == qi {
                continue;
            }
            let d2 = sq_euclidean(qrow, train.row(ti));
            if heap.len() < k {
                heap.push(HeapItem { dist: d2, idx: ti });
            } else if let Some(top) = heap.peek() {
                if d2 < top.dist {
                    heap.pop();
                    heap.push(HeapItem { dist: d2, idx: ti });
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = heap.drain().map(|h| (h.dist, h.idx)).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        out.push(Neighbors {
            indices: pairs.iter().map(|p| p.1).collect(),
            distances: pairs.iter().map(|p| p.0.sqrt()).collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Matrix {
        // Points at x = 0, 1, 2, 10.
        Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 10.0]).unwrap()
    }

    #[test]
    fn self_query_excludes_self() {
        let x = line();
        let nn = knn_search(&x, &x, 2, true);
        assert_eq!(nn[0].indices, vec![1, 2]);
        assert_eq!(nn[0].distances, vec![1.0, 2.0]);
        assert_eq!(nn[3].indices, vec![2, 1]);
        assert_eq!(nn[3].distances, vec![8.0, 9.0]);
    }

    #[test]
    fn external_query_keeps_closest() {
        let x = line();
        let q = Matrix::from_vec(1, 1, vec![1.4]).unwrap();
        let nn = knn_search(&x, &q, 3, false);
        assert_eq!(nn[0].indices, vec![1, 2, 0]);
        assert!((nn[0].distances[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_to_available() {
        let x = line();
        let nn = knn_search(&x, &x, 99, true);
        assert_eq!(nn[0].indices.len(), 3);
        let nn2 = knn_search(&x, &x, 99, false);
        assert_eq!(nn2[0].indices.len(), 4);
        assert_eq!(nn2[0].indices[0], 0); // self at distance 0
    }

    #[test]
    fn distances_sorted_ascending() {
        let x = Matrix::from_vec(5, 2, vec![0., 0., 3., 0., 1., 1., 5., 5., 0.5, 0.1]).unwrap();
        let nn = knn_search(&x, &x, 4, true);
        for n in &nn {
            for w in n.distances.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn duplicate_points_zero_distance() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 1.0, 2.0]).unwrap();
        let nn = knn_search(&x, &x, 1, true);
        assert_eq!(nn[0].distances[0], 0.0);
        assert_eq!(nn[0].indices[0], 1);
    }
}
