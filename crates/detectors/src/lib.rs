//! The 14 source UAD models evaluated in the UADB paper (§IV-A), ported
//! from scratch with PyOD's default hyper-parameters.
//!
//! | Model | Assumption family | Module |
//! |---|---|---|
//! | IForest  | isolation / tree ensemble     | [`iforest`] |
//! | HBOS     | per-dimension density         | [`hbos`] |
//! | LOF      | local neighbour density       | [`lof`] |
//! | KNN      | global neighbour distance     | [`knn`] |
//! | PCA      | linear subspace               | [`pca`] |
//! | OCSVM    | kernel one-class boundary     | [`ocsvm`] |
//! | CBLOF    | clustering                    | [`cblof`] |
//! | COF      | connectivity / chaining       | [`cof`] |
//! | SOD      | axis-parallel subspaces       | [`sod`] |
//! | ECOD     | per-dimension ECDF tails      | [`ecod`] |
//! | GMM      | parametric density            | [`gmm`] |
//! | LODA     | random-projection histograms  | [`loda`] |
//! | COPOD    | empirical copula tails        | [`copod`] |
//! | DeepSVDD | learned one-class hypersphere | [`deep_svdd`] |
//!
//! Every model implements the [`Detector`] trait; the UADB framework is
//! agnostic to which one it wraps (the paper's central design point).
//! Shared substrates: brute-force [`neighbors`] queries and [`kmeans`].
//!
//! All 14 models also implement [`snapshot::DetectorSnapshot`]: their
//! **fitted** state serialises to a compact binary payload and loads
//! back into a detector that scores bit-identically — the substrate for
//! serving frozen teachers next to the distilled booster.

pub mod cblof;
pub mod cof;
pub mod copod;
pub mod deep_svdd;
pub mod ecod;
pub mod gmm;
pub mod hbos;
pub mod iforest;
pub mod kmeans;
pub mod knn;
pub mod loda;
pub mod lof;
pub mod neighbors;
pub mod ocsvm;
pub mod pca;
pub mod snapshot;
pub mod sod;
pub mod traits;

pub use snapshot::{DetectorSnapshot, SnapshotError};
pub use traits::{Detector, DetectorError, DetectorKind};
