//! k-Nearest-Neighbour outlier detection (Ramaswamy et al. 2000).
//!
//! PyOD defaults: `n_neighbors = 5`, `method = "largest"` — the anomaly
//! score of a point is its Euclidean distance to its 5th nearest
//! neighbour in the training set.

use crate::neighbors::knn_search;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// The KNN detector.
pub struct Knn {
    /// Neighbour count (PyOD default 5).
    pub n_neighbors: usize,
    train: Option<Matrix>,
}

impl Default for Knn {
    fn default() -> Self {
        Self { n_neighbors: 5, train: None }
    }
}

impl Detector for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        self.train = Some(x.clone());
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let train = self.train.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != train.cols() {
            return Err(DetectorError::DimensionMismatch { expected: train.cols(), got: x.cols() });
        }
        // Self-queries (same buffer) exclude the trivial zero match so
        // train-set scoring matches PyOD's fitted `decision_scores_`.
        let self_query = std::ptr::eq(train, x)
            || (train.shape() == x.shape() && train.as_slice() == x.as_slice());
        let nn = knn_search(train, x, self.n_neighbors, self_query);
        Ok(nn.into_iter().map(|n| n.distances.last().copied().unwrap_or(0.0)).collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Knn {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Knn
    }

    fn fitted_dim(&self) -> usize {
        self.train.as_ref().map_or(0, Matrix::cols)
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let train = self.train.as_ref().ok_or(SnapshotError::InvalidState("knn: not fitted"))?;
        snapshot::ensure_finite(train.as_slice(), "knn: non-finite training point")?;
        snapshot::write_u64(w, self.n_neighbors as u64)?;
        snapshot::write_matrix(w, train)
    }
}

impl Knn {
    /// Restores the stored training set written by
    /// [`DetectorSnapshot::write_fitted`] (KNN's fitted state *is* the
    /// training set).
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_neighbors = snapshot::read_len(r, snapshot::MAX_LEN, "knn neighbour count")?;
        if n_neighbors == 0 {
            return Err(SnapshotError::Corrupt("knn: zero neighbours"));
        }
        let train = snapshot::read_matrix(r, "knn training matrix")?;
        if train.rows() == 0 || train.cols() == 0 {
            return Err(SnapshotError::Corrupt("knn: empty training matrix"));
        }
        snapshot::check_finite(train.as_slice(), "knn: non-finite training point")?;
        Ok(Self { n_neighbors, train: Some(train) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_point_scores_highest() {
        let mut rows: Vec<Vec<f64>> =
            (0..30).map(|i| vec![(i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1]).collect();
        rows.push(vec![50.0, 50.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let s = Knn::default().fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 30);
    }

    #[test]
    fn score_is_kth_distance() {
        // Points on a line at 0,1,2,3,4,5, k=2: score(0) = d(0 -> 2) = 2.
        let x = Matrix::from_vec(6, 1, (0..6).map(|i| i as f64).collect()).unwrap();
        let mut k = Knn { n_neighbors: 2, train: None };
        let s = k.fit_score(&x).unwrap();
        assert_eq!(s[0], 2.0);
        assert_eq!(s[2], 1.0); // neighbours 1 and 3
    }

    #[test]
    fn out_of_sample_does_not_exclude() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]).unwrap();
        let mut k = Knn { n_neighbors: 1, train: None };
        k.fit(&x).unwrap();
        // Query equal to a training point but in a different buffer of
        // different shape: nearest neighbour at distance 0 counts.
        let q = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        let s = k.score(&q).unwrap();
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn guards() {
        let k = Knn::default();
        assert_eq!(k.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut k = Knn::default();
        assert_eq!(k.fit(&Matrix::zeros(0, 1)), Err(DetectorError::EmptyInput));
        k.fit(&Matrix::zeros(5, 2)).unwrap();
        assert!(matches!(
            k.score(&Matrix::zeros(1, 3)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }
}
