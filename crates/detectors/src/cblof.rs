//! Cluster-Based Local Outlier Factor (He, Xu & Deng 2003).
//!
//! PyOD defaults: k-means with `n_clusters = 8`, `alpha = 0.9`,
//! `beta = 5`, `use_weights = False`. Clusters are split into large and
//! small by the (α, β) rule; points in large clusters score their
//! distance to the own centroid, points in small clusters score the
//! distance to the nearest *large* centroid.

use crate::kmeans::kmeans;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::distance::euclidean;
use uadb_linalg::Matrix;

/// The CBLOF detector.
pub struct Cblof {
    /// k-means cluster count (PyOD default 8).
    pub n_clusters: usize,
    /// Cumulative-share boundary (PyOD default 0.9).
    pub alpha: f64,
    /// Size-ratio boundary (PyOD default 5.0).
    pub beta: f64,
    seed: u64,
    fitted: Option<Fitted>,
}

struct Fitted {
    centroids: Matrix,
    /// Indices of large clusters.
    large: Vec<usize>,
}

impl Cblof {
    /// PyOD defaults with an explicit k-means seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { n_clusters: 8, alpha: 0.9, beta: 5.0, seed, fitted: None }
    }
}

impl Default for Cblof {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

/// Applies the (α, β) large/small split to descending cluster sizes.
/// Returns the number of leading (largest) clusters considered "large".
fn split_boundary(sizes_desc: &[usize], n: usize, alpha: f64, beta: f64) -> usize {
    let mut cum = 0usize;
    for i in 0..sizes_desc.len() {
        cum += sizes_desc[i];
        let alpha_hit = (cum as f64) >= alpha * n as f64;
        let beta_hit = i + 1 < sizes_desc.len()
            && sizes_desc[i + 1] > 0
            && (sizes_desc[i] as f64 / sizes_desc[i + 1] as f64) >= beta;
        if alpha_hit || beta_hit {
            return i + 1;
        }
    }
    sizes_desc.len()
}

impl Detector for Cblof {
    fn name(&self) -> &'static str {
        "CBLOF"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let km = kmeans(x, self.n_clusters, 100, self.seed);
        let k = km.centroids.rows();
        // Sort clusters by size descending to apply the (α, β) rule.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| km.sizes[b].cmp(&km.sizes[a]));
        let sizes_desc: Vec<usize> = order.iter().map(|&c| km.sizes[c]).collect();
        let boundary = split_boundary(&sizes_desc, n, self.alpha, self.beta);
        let large: Vec<usize> = order[..boundary].to_vec();
        self.fitted = Some(Fitted { centroids: km.centroids, large });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != f.centroids.cols() {
            return Err(DetectorError::DimensionMismatch {
                expected: f.centroids.cols(),
                got: x.cols(),
            });
        }
        let k = f.centroids.rows();
        Ok(x.row_iter()
            .map(|row| {
                // Nearest centroid determines cluster membership.
                let mut own = 0usize;
                let mut own_dist = f64::INFINITY;
                for c in 0..k {
                    let d = euclidean(row, f.centroids.row(c));
                    if d < own_dist {
                        own_dist = d;
                        own = c;
                    }
                }
                if f.large.contains(&own) {
                    own_dist
                } else {
                    // Small cluster: distance to the nearest large centroid.
                    f.large
                        .iter()
                        .map(|&c| euclidean(row, f.centroids.row(c)))
                        .fold(f64::INFINITY, f64::min)
                }
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Cblof {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Cblof
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.centroids.cols())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("cblof: not fitted"))?;
        snapshot::ensure_finite(f.centroids.as_slice(), "cblof: non-finite centroid")?;
        if f.large.is_empty() {
            return Err(SnapshotError::InvalidState("cblof: no large clusters"));
        }
        snapshot::write_matrix(w, &f.centroids)?;
        snapshot::write_u64(w, f.large.len() as u64)?;
        for &c in &f.large {
            snapshot::write_u64(w, c as u64)?;
        }
        Ok(())
    }
}

impl Cblof {
    /// Restores the centroids and the large-cluster set written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let centroids = snapshot::read_matrix(r, "cblof centroids")?;
        if centroids.rows() == 0 || centroids.cols() == 0 {
            return Err(SnapshotError::Corrupt("cblof: empty centroids"));
        }
        snapshot::check_finite(centroids.as_slice(), "cblof: non-finite centroid")?;
        let n_large = snapshot::read_len(r, centroids.rows() as u64, "cblof large count")?;
        if n_large == 0 {
            // A small-cluster point scores its distance to the nearest
            // *large* centroid; none at all would fold to +inf.
            return Err(SnapshotError::Corrupt("cblof: no large clusters"));
        }
        let mut large = Vec::with_capacity(n_large);
        for _ in 0..n_large {
            let c = snapshot::read_len(r, snapshot::MAX_LEN, "cblof cluster index")?;
            if c >= centroids.rows() {
                return Err(SnapshotError::Corrupt("cblof: cluster index out of range"));
            }
            large.push(c);
        }
        let defaults = Cblof::default();
        Ok(Self {
            n_clusters: defaults.n_clusters,
            alpha: defaults.alpha,
            beta: defaults.beta,
            seed: defaults.seed,
            fitted: Some(Fitted { centroids, large }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_blob_and_tiny_cluster() -> Matrix {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..60 {
            rows.push(vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1]);
        }
        // Tiny far-away cluster (clustered anomalies).
        rows.push(vec![20.0, 20.0]);
        rows.push(vec![20.1, 20.0]);
        rows.push(vec![20.0, 20.1]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn small_cluster_members_score_high() {
        let x = big_blob_and_tiny_cluster();
        let mut c = Cblof { n_clusters: 4, ..Cblof::with_seed(1) };
        let s = c.fit_score(&x).unwrap();
        let blob_max = s[..60].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let tiny_min = s[60..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            tiny_min > blob_max,
            "tiny-cluster scores ({tiny_min}) must exceed blob scores ({blob_max})"
        );
    }

    #[test]
    fn split_boundary_alpha_rule() {
        // 90 + 10: the first cluster alone covers alpha=0.9.
        assert_eq!(split_boundary(&[90, 10], 100, 0.9, 5.0), 1);
        // Balanced clusters: need several to reach 90%.
        assert_eq!(split_boundary(&[25, 25, 25, 25], 100, 0.9, 99.0), 4);
    }

    #[test]
    fn split_boundary_beta_rule() {
        // 50 vs 9: ratio > 5 splits after the first.
        assert_eq!(split_boundary(&[50, 9, 8], 67, 0.99, 5.0), 1);
    }

    #[test]
    fn all_large_when_no_rule_fires() {
        assert_eq!(split_boundary(&[10, 10, 10], 30, 1.1, 50.0), 3);
    }

    #[test]
    fn guards() {
        let c = Cblof::default();
        assert_eq!(c.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut c = Cblof::default();
        assert_eq!(c.fit(&Matrix::zeros(0, 2)), Err(DetectorError::EmptyInput));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = big_blob_and_tiny_cluster();
        let a = Cblof::with_seed(9).fit_score(&x).unwrap();
        let b = Cblof::with_seed(9).fit_score(&x).unwrap();
        assert_eq!(a, b);
    }
}
