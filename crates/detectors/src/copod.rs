//! COPOD: copula-based outlier detection (Li et al. 2020).
//!
//! Close cousin of ECOD (same authors) but with a different aggregation:
//! per dimension COPOD takes the element-wise maximum of the left-tail,
//! right-tail and skewness-corrected `−log` probabilities, then **sums**
//! over dimensions — whereas ECOD sums first and maximises the three
//! aggregates. This mirrors PyOD's `copod.py`.

use crate::ecod::EcdfDim;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// The COPOD detector.
#[derive(Default)]
pub struct Copod {
    dims: Vec<EcdfDim>,
}

impl Detector for Copod {
    fn name(&self) -> &'static str {
        "COPOD"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        self.dims = (0..d).map(|j| EcdfDim::build(x.col(j))).collect();
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.dims.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.dims.len() {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims.len(),
                got: x.cols(),
            });
        }
        Ok(x.row_iter()
            .map(|row| {
                row.iter()
                    .zip(&self.dims)
                    .map(|(&v, dim)| {
                        let ul = -dim.left(v).ln();
                        let ur = -dim.right(v).ln();
                        let u_skew = if dim.skewness < 0.0 { ul } else { ur };
                        ul.max(ur).max(u_skew)
                    })
                    .sum()
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::ecod::{read_dims, write_dims};
use crate::snapshot::{DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Copod {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Copod
    }

    fn fitted_dim(&self) -> usize {
        self.dims.len()
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.dims.is_empty() {
            return Err(SnapshotError::InvalidState("copod: not fitted"));
        }
        write_dims(&self.dims, w)
    }
}

impl Copod {
    /// Restores the per-dimension ECDF tables written by
    /// [`DetectorSnapshot::write_fitted`] (same layout as ECOD).
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        Ok(Self { dims: read_dims(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecod::Ecod;

    #[test]
    fn extreme_point_scores_highest() {
        let mut vals: Vec<f64> = (0..60).map(|i| (i % 12) as f64 * 0.1).collect();
        vals.extend([9.0, 9.0]); // one 2-d outlier row
        let x = Matrix::from_vec(31, 2, vals).unwrap();
        let s = Copod::default().fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 30);
    }

    #[test]
    fn differs_from_ecod_on_mixed_tails() {
        // A point extreme-left in dim 0 and extreme-right in dim 1:
        // COPOD (per-dim max, then sum) rates it higher than ECOD's
        // whole-vector aggregation on at least some inputs.
        let mut rows: Vec<Vec<f64>> =
            (0..50).map(|i| vec![(i % 10) as f64, ((i * 7) % 10) as f64]).collect();
        rows.push(vec![-50.0, 50.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let sc = Copod::default().fit_score(&x).unwrap();
        let se = Ecod::default().fit_score(&x).unwrap();
        // Both must flag the mixed-tail point as most anomalous...
        let top_c = sc.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let top_e = se.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(top_c, 50);
        assert_eq!(top_e, 50);
        // ...but COPOD's aggregation credits both tails simultaneously.
        assert!(sc[50] >= se[50] - 1e-9);
    }

    #[test]
    fn copod_dominates_ecod_per_sample() {
        // By construction Σ_d max(...) >= max(Σ_d ...) for each sample.
        let x =
            Matrix::from_vec(40, 3, (0..120).map(|i| ((i * 13) % 29) as f64).collect()).unwrap();
        let sc = Copod::default().fit_score(&x).unwrap();
        let se = Ecod::default().fit_score(&x).unwrap();
        for (c, e) in sc.iter().zip(&se) {
            assert!(c + 1e-9 >= *e, "copod {c} < ecod {e}");
        }
    }

    #[test]
    fn guards() {
        let c = Copod::default();
        assert_eq!(c.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut c = Copod::default();
        assert_eq!(c.fit(&Matrix::zeros(0, 1)), Err(DetectorError::EmptyInput));
    }
}
