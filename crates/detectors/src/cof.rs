//! Connectivity-based Outlier Factor (Tang et al. 2002).
//!
//! PyOD default: `n_neighbors = 20`. COF replaces LOF's density with the
//! *average chaining distance*: the cost of greedily connecting a point
//! to its k-neighbourhood one edge at a time (a set-based nearest path),
//! with earlier edges weighted more. The factor is the point's chaining
//! distance relative to its neighbours' — sensitive to low-density
//! *patterns* (e.g. lines) that density-based LOF misses.

use crate::neighbors::knn_search;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::distance::euclidean;
use uadb_linalg::Matrix;

/// The COF detector.
pub struct Cof {
    /// Neighbour count (PyOD default 20).
    pub n_neighbors: usize,
    fitted: Option<Fitted>,
}

struct Fitted {
    train: Matrix,
    /// Average chaining distance of every training point.
    ac_dist: Vec<f64>,
}

impl Default for Cof {
    fn default() -> Self {
        Self { n_neighbors: 20, fitted: None }
    }
}

/// Average chaining distance of `point` through its neighbour set.
///
/// Builds the set-based nearest path: starting from the point itself,
/// repeatedly connect the unvisited neighbour closest to *any* connected
/// vertex; the i-th edge (1-based) gets weight `2(k+1-i) / (k(k+1))`.
fn avg_chaining_distance(point: &[f64], neighbours: &Matrix) -> f64 {
    let k = neighbours.rows();
    if k == 0 {
        return 0.0;
    }
    let mut connected: Vec<&[f64]> = Vec::with_capacity(k + 1);
    connected.push(point);
    let mut remaining: Vec<usize> = (0..k).collect();
    let kf = k as f64;
    let mut total = 0.0;
    for step in 1..=k {
        // Closest remaining vertex to the connected component.
        let mut best_pos = 0usize;
        let mut best_d = f64::INFINITY;
        for (pos, &r) in remaining.iter().enumerate() {
            let row = neighbours.row(r);
            for c in &connected {
                let d = euclidean(row, c);
                if d < best_d {
                    best_d = d;
                    best_pos = pos;
                }
            }
        }
        let weight = 2.0 * (kf + 1.0 - step as f64) / (kf * (kf + 1.0));
        total += weight * best_d;
        let chosen = remaining.swap_remove(best_pos);
        connected.push(neighbours.row(chosen));
    }
    total
}

impl Detector for Cof {
    fn name(&self) -> &'static str {
        "COF"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n < 2 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let nn = knn_search(x, x, self.n_neighbors, true);
        let ac_dist: Vec<f64> = nn
            .iter()
            .enumerate()
            .map(|(i, n)| avg_chaining_distance(x.row(i), &x.select_rows(&n.indices)))
            .collect();
        self.fitted = Some(Fitted { train: x.clone(), ac_dist });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != f.train.cols() {
            return Err(DetectorError::DimensionMismatch {
                expected: f.train.cols(),
                got: x.cols(),
            });
        }
        let self_query = f.train.shape() == x.shape() && f.train.as_slice() == x.as_slice();
        let nn = knn_search(&f.train, x, self.n_neighbors, self_query);
        Ok(nn
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let own = avg_chaining_distance(x.row(i), &f.train.select_rows(&n.indices));
                let neigh_mean: f64 = n.indices.iter().map(|&j| f.ac_dist[j]).sum::<f64>()
                    / n.indices.len().max(1) as f64;
                if neigh_mean <= 0.0 {
                    if own <= 0.0 {
                        1.0
                    } else {
                        f64::MAX.sqrt()
                    }
                } else {
                    own / neigh_mean
                }
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Cof {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Cof
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.train.cols())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("cof: not fitted"))?;
        snapshot::ensure_finite(f.train.as_slice(), "cof: non-finite training point")?;
        snapshot::ensure_finite(&f.ac_dist, "cof: non-finite chaining distance")?;
        snapshot::write_u64(w, self.n_neighbors as u64)?;
        snapshot::write_matrix(w, &f.train)?;
        snapshot::write_f64s(w, &f.ac_dist)
    }
}

impl Cof {
    /// Restores the training set plus every point's average chaining
    /// distance written by [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_neighbors = snapshot::read_len(r, snapshot::MAX_LEN, "cof neighbour count")?;
        if n_neighbors == 0 {
            return Err(SnapshotError::Corrupt("cof: zero neighbours"));
        }
        let train = snapshot::read_matrix(r, "cof training matrix")?;
        if train.rows() < 2 || train.cols() == 0 {
            return Err(SnapshotError::Corrupt("cof: degenerate training matrix"));
        }
        snapshot::check_finite(train.as_slice(), "cof: non-finite training point")?;
        let ac_dist = snapshot::read_f64s(r, train.rows())?;
        snapshot::check_finite(&ac_dist, "cof: non-finite chaining distance")?;
        Ok(Self { n_neighbors, fitted: Some(Fitted { train, ac_dist }) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_off_a_line_is_flagged() {
        // COF's signature case: inliers on a 1-d line, outlier beside it.
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        rows.push(vec![7.0, 3.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut cof = Cof { n_neighbors: 5, fitted: None };
        let s = cof.fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 30, "scores {s:?}");
    }

    #[test]
    fn chaining_distance_of_evenly_spaced_points() {
        // Point at 0, neighbours at 1 and 2: the path edges are 1 and 1.
        // Weights (k=2): 2*(2)/(2*3)=2/3 and 2*(1)/(2*3)=1/3 -> total 1.
        let p = [0.0];
        let nb = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let ac = avg_chaining_distance(&p, &nb);
        assert!((ac - 1.0).abs() < 1e-12, "got {ac}");
    }

    #[test]
    fn empty_neighbourhood_is_zero() {
        assert_eq!(avg_chaining_distance(&[1.0], &Matrix::zeros(0, 1)), 0.0);
    }

    #[test]
    fn uniform_line_scores_near_one() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut cof = Cof { n_neighbors: 4, fitted: None };
        let s = cof.fit_score(&x).unwrap();
        assert!((s[20] - 1.0).abs() < 0.2, "interior COF {}", s[20]);
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        let mut rows = vec![vec![0.0, 0.0]; 8];
        rows.push(vec![1.0, 1.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut cof = Cof { n_neighbors: 3, fitted: None };
        let s = cof.fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guards() {
        let cof = Cof::default();
        assert_eq!(cof.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut cof = Cof::default();
        assert_eq!(cof.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
    }
}
