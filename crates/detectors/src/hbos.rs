//! Histogram-Based Outlier Score (Goldstein & Dengel 2012).
//!
//! PyOD defaults: 10 static equal-width bins per dimension, regulariser
//! `alpha = 0.1`, out-of-range tolerance `tol = 0.5`. The score of a
//! sample is `Σ_d log(1 / (density_d(x_d) + alpha))` — dimensions are
//! assumed independent, high density means low outlierness.

use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// Per-dimension equal-width histogram.
#[derive(Debug, Clone)]
struct DimHistogram {
    lo: f64,
    width: f64,
    /// Normalised densities per bin (integrates to 1 over the range).
    densities: Vec<f64>,
}

impl DimHistogram {
    fn build(values: &[f64], n_bins: usize) -> Self {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1e-12);
        let width = range / n_bins as f64;
        let mut counts = vec![0usize; n_bins];
        for &v in values {
            let mut b = ((v - lo) / width) as usize;
            if b >= n_bins {
                b = n_bins - 1; // v == hi lands in the last bin
            }
            counts[b] += 1;
        }
        let n = values.len() as f64;
        let densities = counts.iter().map(|&c| c as f64 / (n * width)).collect();
        Self { lo, width, densities }
    }

    /// Density at `v`; out-of-range queries are clamped to the nearest
    /// edge bin (PyOD's `tol` behaviour for mildly out-of-range points).
    fn density(&self, v: f64) -> f64 {
        let n_bins = self.densities.len();
        let b = ((v - self.lo) / self.width).floor();
        let idx = if b < 0.0 {
            0
        } else if b as usize >= n_bins {
            n_bins - 1
        } else {
            b as usize
        };
        self.densities[idx]
    }
}

/// The HBOS detector.
pub struct Hbos {
    /// Bins per dimension (PyOD default 10).
    pub n_bins: usize,
    /// Density regulariser (PyOD default 0.1).
    pub alpha: f64,
    histograms: Vec<DimHistogram>,
}

impl Default for Hbos {
    fn default() -> Self {
        Self { n_bins: 10, alpha: 0.1, histograms: Vec::new() }
    }
}

impl Detector for Hbos {
    fn name(&self) -> &'static str {
        "HBOS"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        self.histograms = (0..d).map(|j| DimHistogram::build(&x.col(j), self.n_bins)).collect();
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.histograms.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.histograms.len() {
            return Err(DetectorError::DimensionMismatch {
                expected: self.histograms.len(),
                got: x.cols(),
            });
        }
        Ok(x.row_iter()
            .map(|row| {
                row.iter()
                    .zip(&self.histograms)
                    .map(|(&v, h)| (1.0 / (h.density(v) + self.alpha)).ln())
                    .sum()
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Hbos {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Hbos
    }

    fn fitted_dim(&self) -> usize {
        self.histograms.len()
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.histograms.is_empty() {
            return Err(SnapshotError::InvalidState("hbos: not fitted"));
        }
        if !self.alpha.is_finite() {
            return Err(SnapshotError::InvalidState("hbos: non-finite alpha"));
        }
        for h in &self.histograms {
            if !(h.lo.is_finite() && h.width.is_finite() && h.width > 0.0) {
                return Err(SnapshotError::InvalidState("hbos: invalid bin geometry"));
            }
            snapshot::ensure_finite(&h.densities, "hbos: non-finite density")?;
        }
        let n_bins = self.histograms[0].densities.len();
        snapshot::write_f64(w, self.alpha)?;
        snapshot::write_u64(w, n_bins as u64)?;
        snapshot::write_u64(w, self.histograms.len() as u64)?;
        for h in &self.histograms {
            snapshot::write_f64(w, h.lo)?;
            snapshot::write_f64(w, h.width)?;
            snapshot::write_f64s(w, &h.densities)?;
        }
        Ok(())
    }
}

impl Hbos {
    /// Restores the fitted histograms written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let alpha = snapshot::read_f64(r)?;
        if !alpha.is_finite() {
            return Err(SnapshotError::Corrupt("hbos: non-finite alpha"));
        }
        let n_bins = snapshot::read_len(r, 1 << 20, "hbos bin count")?;
        if n_bins == 0 {
            return Err(SnapshotError::Corrupt("hbos: zero bins"));
        }
        let d = snapshot::read_len(r, snapshot::MAX_DIM, "hbos dimension count")?;
        if d == 0 {
            return Err(SnapshotError::Corrupt("hbos: zero dimensions"));
        }
        let mut histograms = Vec::with_capacity(d.min(8192));
        for _ in 0..d {
            let lo = snapshot::read_f64(r)?;
            let width = snapshot::read_f64(r)?;
            // `density()` divides by `width`; a zero/NaN width would turn
            // every score into NaN or inf.
            if !(lo.is_finite() && width.is_finite() && width > 0.0) {
                return Err(SnapshotError::Corrupt("hbos: invalid bin geometry"));
            }
            let densities = snapshot::read_f64s(r, n_bins)?;
            snapshot::check_finite(&densities, "hbos: non-finite density")?;
            histograms.push(DimHistogram { lo, width, densities });
        }
        Ok(Self { n_bins, alpha, histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_density_point_scores_higher() {
        // Dense cluster at 0..1, single point at 10.
        let mut vals: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        vals.push(10.0);
        let x = Matrix::from_vec(51, 1, vals).unwrap();
        let mut h = Hbos::default();
        let s = h.fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 50);
    }

    #[test]
    fn multi_dim_scores_sum() {
        // Two identical dimensions double the (log) score offset structure.
        let x1 = Matrix::from_vec(4, 1, vec![0.0, 0.1, 0.2, 5.0]).unwrap();
        let x2 = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.1, 0.1, 0.2, 0.2, 5.0, 5.0]).unwrap();
        let s1 = Hbos::default().fit_score(&x1).unwrap();
        let s2 = Hbos::default().fit_score(&x2).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            assert!((2.0 * a - b).abs() < 1e-9, "2*{a} vs {b}");
        }
    }

    #[test]
    fn out_of_range_query_clamps() {
        let x = Matrix::from_vec(10, 1, (0..10).map(|i| i as f64).collect()).unwrap();
        let mut h = Hbos::default();
        h.fit(&x).unwrap();
        let q = Matrix::from_vec(2, 1, vec![-100.0, 100.0]).unwrap();
        let s = h.score(&q).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn constant_dimension_is_finite() {
        let x = Matrix::filled(10, 2, 3.0);
        let s = Hbos::default().fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guards() {
        let h = Hbos::default();
        assert_eq!(h.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut h = Hbos::default();
        assert_eq!(h.fit(&Matrix::zeros(0, 1)), Err(DetectorError::EmptyInput));
        h.fit(&Matrix::zeros(3, 2)).unwrap();
        assert!(matches!(
            h.score(&Matrix::zeros(1, 3)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }
}
