//! Deep Support Vector Data Description (Ruff et al. 2018).
//!
//! PyOD defaults: an MLP encoder with hidden layers `[64, 32]` and ReLU.
//! The hypersphere centre is the mean embedding of the untrained network
//! over the training data (with the usual ±0.1 floor to avoid the trivial
//! all-zero solution); training minimises the mean squared distance to
//! the centre; the anomaly score is the squared embedding distance.
//!
//! Training epochs are scaled to 20 (PyOD uses 100) — DeepSVDD's
//! *relative* behaviour (weakest of the 14, biggest UADB gains, cf.
//! Table IV) is insensitive to this and it keeps the full-suite
//! experiments laptop-sized; see DESIGN.md §2.

use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;
use uadb_nn::{train_svdd, Activation, Mlp, MlpConfig, TrainConfig};

/// The DeepSVDD detector.
pub struct DeepSvdd {
    /// Encoder hidden widths (PyOD default `[64, 32]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (PyOD default 32).
    pub batch_size: usize,
    seed: u64,
    fitted: Option<Fitted>,
}

struct Fitted {
    mlp: Mlp,
    center: Vec<f64>,
    n_features: usize,
}

impl DeepSvdd {
    /// PyOD-default architecture with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { hidden: vec![64, 32], epochs: 20, batch_size: 32, seed, fitted: None }
    }
}

impl Default for DeepSvdd {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Detector for DeepSvdd {
    fn name(&self) -> &'static str {
        "DeepSVDD"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let rep_dim = *self.hidden.last().unwrap_or(&32);
        let encoder_hidden: Vec<usize> =
            self.hidden[..self.hidden.len().saturating_sub(1)].to_vec();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: d,
            hidden: encoder_hidden,
            output_dim: rep_dim,
            activation: Activation::Identity,
            seed: self.seed,
        });
        // Centre = mean embedding of the *initial* network, with the
        // standard epsilon floor so the network cannot collapse onto a
        // trivially reachable centre.
        let init = mlp.forward(x);
        let mut center = vec![0.0; rep_dim];
        for r in 0..init.rows() {
            for (c, &v) in center.iter_mut().zip(init.row(r)) {
                *c += v;
            }
        }
        for c in &mut center {
            *c /= n as f64;
            if c.abs() < 0.1 {
                *c = if *c >= 0.0 { 0.1 } else { -0.1 };
            }
        }
        let cfg = TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            shuffle_seed: self.seed ^ 0xdeadbeef,
            ..TrainConfig::default()
        };
        train_svdd(&mut mlp, x, &center, &cfg);
        self.fitted = Some(Fitted { mlp, center, n_features: d });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != f.n_features {
            return Err(DetectorError::DimensionMismatch { expected: f.n_features, got: x.cols() });
        }
        let emb = f.mlp.forward(x);
        Ok((0..emb.rows())
            .map(|r| {
                emb.row(r)
                    .iter()
                    .zip(&f.center)
                    .map(|(e, c)| {
                        let d = e - c;
                        d * d
                    })
                    .sum()
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};
use uadb_nn::linear::Linear;

impl DetectorSnapshot for DeepSvdd {
    fn kind(&self) -> DetectorKind {
        DetectorKind::DeepSvdd
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.n_features)
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("deepsvdd: not fitted"))?;
        snapshot::ensure_finite(&f.center, "deepsvdd: non-finite centre")?;
        for layer in f.mlp.layers() {
            snapshot::ensure_finite(layer.weights().as_slice(), "deepsvdd: non-finite weight")?;
            snapshot::ensure_finite(layer.bias(), "deepsvdd: non-finite bias")?;
        }
        snapshot::write_u64(w, f.n_features as u64)?;
        snapshot::write_u64(w, f.center.len() as u64)?;
        snapshot::write_f64s(w, &f.center)?;
        snapshot::write_u8(
            w,
            match f.mlp.activation() {
                Activation::Sigmoid => 0,
                Activation::Identity => 1,
            },
        )?;
        snapshot::write_u64(w, f.mlp.n_layers() as u64)?;
        for layer in f.mlp.layers() {
            snapshot::write_u64(w, layer.input_dim() as u64)?;
            snapshot::write_u64(w, layer.output_dim() as u64)?;
            snapshot::write_f64s(w, layer.weights().as_slice())?;
            snapshot::write_f64s(w, layer.bias())?;
        }
        Ok(())
    }
}

impl DeepSvdd {
    /// Restores the trained encoder and hypersphere centre written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_features = snapshot::read_len(r, snapshot::MAX_DIM, "deepsvdd feature count")?;
        if n_features == 0 {
            return Err(SnapshotError::Corrupt("deepsvdd: zero features"));
        }
        let rep_dim = snapshot::read_len(r, snapshot::MAX_DIM, "deepsvdd representation dim")?;
        if rep_dim == 0 {
            return Err(SnapshotError::Corrupt("deepsvdd: zero representation dim"));
        }
        let center = snapshot::read_f64s(r, rep_dim)?;
        snapshot::check_finite(&center, "deepsvdd: non-finite centre")?;
        let activation = match snapshot::read_u8(r)? {
            0 => Activation::Sigmoid,
            1 => Activation::Identity,
            _ => return Err(SnapshotError::Corrupt("deepsvdd: unknown activation")),
        };
        let n_layers = snapshot::read_len(r, 1 << 8, "deepsvdd layer count")?;
        if n_layers == 0 {
            return Err(SnapshotError::Corrupt("deepsvdd: no layers"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut expected_in = n_features;
        for _ in 0..n_layers {
            let in_dim = snapshot::read_len(r, snapshot::MAX_DIM, "deepsvdd layer input")?;
            let out_dim = snapshot::read_len(r, snapshot::MAX_DIM, "deepsvdd layer output")?;
            if in_dim != expected_in || out_dim == 0 {
                return Err(SnapshotError::Corrupt("deepsvdd: layer dimensions do not chain"));
            }
            if (in_dim as u64).saturating_mul(out_dim as u64) > snapshot::MAX_LEN {
                return Err(SnapshotError::Corrupt("deepsvdd: layer too large"));
            }
            let weights = snapshot::read_f64s(r, in_dim * out_dim)?;
            snapshot::check_finite(&weights, "deepsvdd: non-finite weight")?;
            let bias = snapshot::read_f64s(r, out_dim)?;
            snapshot::check_finite(&bias, "deepsvdd: non-finite bias")?;
            let w = Matrix::from_vec(in_dim, out_dim, weights)
                .map_err(|_| SnapshotError::Corrupt("deepsvdd: weight shape mismatch"))?;
            layers.push(Linear::from_parts(w, bias));
            expected_in = out_dim;
        }
        if expected_in != rep_dim {
            return Err(SnapshotError::Corrupt("deepsvdd: encoder output != centre dim"));
        }
        // `hidden` is reconstructed from the layer shapes so the struct
        // stays self-consistent; epochs/batch/seed only matter to `fit`.
        let hidden: Vec<usize> = layers.iter().map(Linear::output_dim).collect();
        let defaults = DeepSvdd::with_seed(0);
        Ok(Self {
            hidden,
            epochs: defaults.epochs,
            batch_size: defaults.batch_size,
            seed: defaults.seed,
            fitted: Some(Fitted { mlp: Mlp::from_layers(layers, activation), center, n_features }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec![t.sin() * 0.3, t.cos() * 0.3]
            })
            .collect();
        rows.push(vec![15.0, -15.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn far_point_scores_higher_than_typical() {
        let x = blob_with_outlier();
        let mut d = DeepSvdd::with_seed(0);
        let s = d.fit_score(&x).unwrap();
        let inlier_mean: f64 = s[..60].iter().sum::<f64>() / 60.0;
        assert!(s[60] > inlier_mean, "outlier {} vs inlier mean {}", s[60], inlier_mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blob_with_outlier();
        let a = DeepSvdd::with_seed(3).fit_score(&x).unwrap();
        let b = DeepSvdd::with_seed(3).fit_score(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn center_floor_applied() {
        let x = blob_with_outlier();
        let mut d = DeepSvdd::with_seed(1);
        d.fit(&x).unwrap();
        let f = d.fitted.as_ref().unwrap();
        assert!(f.center.iter().all(|c| c.abs() >= 0.1 - 1e-12));
    }

    #[test]
    fn guards() {
        let d = DeepSvdd::default();
        assert_eq!(d.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut d = DeepSvdd::default();
        assert_eq!(d.fit(&Matrix::zeros(0, 2)), Err(DetectorError::EmptyInput));
    }
}
