//! Versioned binary snapshots of **fitted** detector state.
//!
//! UADB's serving story needs the teacher next to the distilled booster:
//! production A/B of "teacher vs. booster" (the paper's whole premise)
//! is impossible if the fitted IForest trees, PCA bases or ECOD tail
//! tables die with the training process. [`DetectorSnapshot`] gives every
//! detector a save/load on its *fitted state* — not its config — so a
//! frozen teacher scores queries bit-identically after a round trip
//! through disk.
//!
//! ## Format
//!
//! A snapshot is `tag || payload`:
//!
//! * `tag` — one stable byte per detector kind (see [`kind_tag`]); the
//!   numbers are part of the on-disk format and must never be reused.
//! * `payload` — the detector's own fitted-state layout, written by its
//!   [`DetectorSnapshot::write_fitted`] impl. All integers are
//!   little-endian `u64` (or a single tag byte), all floats raw IEEE-754
//!   bits, so loads reproduce scoring **bit-identically**.
//!
//! There is no magic/version/trailer here: snapshots are designed to be
//! embedded as a record inside an outer versioned container (the serve
//! crate's model-file format), which provides those. The
//! [`save`]/[`load`] helpers operate on any `Write`/`Read`.
//!
//! ## Safety against corrupt input
//!
//! Loaders treat every length and index as untrusted: lengths are capped
//! before allocation, and any index that scoring would later use to
//! address memory (tree child pointers, feature indices, centroid ids)
//! is bounds-checked at load time, so a corrupted file yields a typed
//! [`SnapshotError`] — never a panic or an out-of-bounds access.
//! Symmetrically, [`save`] refuses NaN-poisoned fitted state with
//! [`SnapshotError::InvalidState`]: writing it anyway would produce a
//! file every loader rejects.

use crate::traits::{Detector, DetectorKind};
use std::fmt;
use std::io::{self, Read, Write};
use uadb_linalg::Matrix;

/// Errors from [`save`] / [`load`].
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (including truncated input).
    Io(io::Error),
    /// The kind tag does not name a known detector.
    UnknownKind(u8),
    /// Structurally invalid content (with a description of what).
    Corrupt(&'static str),
    /// The in-memory detector cannot be snapshotted as-is: it was never
    /// fitted, or its fitted state carries non-finite values that no
    /// loader would accept back.
    InvalidState(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o failure: {e}"),
            SnapshotError::UnknownKind(tag) => {
                write!(f, "unknown detector kind tag {tag}")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt detector snapshot: {what}"),
            SnapshotError::InvalidState(what) => {
                write!(f, "detector state is not snapshotable: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Sanity caps while reading untrusted snapshots: any length beyond
/// these is treated as corruption rather than an allocation request.
pub(crate) const MAX_LEN: u64 = 1 << 26;
pub(crate) const MAX_DIM: u64 = 1 << 24;

/// A detector whose fitted state can be serialised and restored.
///
/// The contract is **bit-identity**: for any fitted detector `d` and any
/// query matrix `q`, `load(save(d)).score(q)` returns exactly the bits
/// `d.score(q)` returns. The config a detector was *built* with is not
/// part of the contract — only what scoring needs travels (hence e.g. a
/// restored IForest scores with the exact trees it was fitted with, but
/// reports default `max_samples` and RNG seed, which only `fit` uses).
///
/// `Sync` is a supertrait so a loaded teacher can be shared across
/// scoring workers the same way a booster is.
pub trait DetectorSnapshot: Detector + Sync {
    /// The kind this snapshot serialises as (stable on-disk tag).
    fn kind(&self) -> DetectorKind;

    /// Fitted feature dimensionality (what a query row must have).
    fn fitted_dim(&self) -> usize;

    /// Writes the fitted-state payload (everything after the kind tag).
    ///
    /// Must fail with [`SnapshotError::InvalidState`] — before writing
    /// any byte that a buffering caller would have to unwind — when the
    /// detector is unfitted or its state contains non-finite values.
    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError>;
}

/// The stable on-disk tag of a detector kind. Part of the format: tags
/// are append-only and never reused.
pub fn kind_tag(kind: DetectorKind) -> u8 {
    match kind {
        DetectorKind::IForest => 1,
        DetectorKind::Hbos => 2,
        DetectorKind::Lof => 3,
        DetectorKind::Knn => 4,
        DetectorKind::Pca => 5,
        DetectorKind::Ocsvm => 6,
        DetectorKind::Cblof => 7,
        DetectorKind::Cof => 8,
        DetectorKind::Sod => 9,
        DetectorKind::Ecod => 10,
        DetectorKind::Gmm => 11,
        DetectorKind::Loda => 12,
        DetectorKind::Copod => 13,
        DetectorKind::DeepSvdd => 14,
    }
}

/// Inverse of [`kind_tag`].
pub fn kind_from_tag(tag: u8) -> Option<DetectorKind> {
    DetectorKind::ALL.into_iter().find(|&k| kind_tag(k) == tag)
}

/// Instantiates a snapshot-capable detector with PyOD default
/// hyper-parameters — the snapshot-aware twin of [`DetectorKind::build`].
/// All 14 kinds are snapshot-able.
pub fn build(kind: DetectorKind, seed: u64) -> Box<dyn DetectorSnapshot> {
    match kind {
        DetectorKind::IForest => Box::new(crate::iforest::IForest::with_seed(seed)),
        DetectorKind::Hbos => Box::new(crate::hbos::Hbos::default()),
        DetectorKind::Lof => Box::new(crate::lof::Lof::default()),
        DetectorKind::Knn => Box::new(crate::knn::Knn::default()),
        DetectorKind::Pca => Box::new(crate::pca::Pca::default()),
        DetectorKind::Ocsvm => Box::new(crate::ocsvm::OcSvm::default()),
        DetectorKind::Cblof => Box::new(crate::cblof::Cblof::with_seed(seed)),
        DetectorKind::Cof => Box::new(crate::cof::Cof::default()),
        DetectorKind::Sod => Box::new(crate::sod::Sod::default()),
        DetectorKind::Ecod => Box::new(crate::ecod::Ecod::default()),
        DetectorKind::Gmm => Box::new(crate::gmm::Gmm::with_seed(seed)),
        DetectorKind::Loda => Box::new(crate::loda::Loda::with_seed(seed)),
        DetectorKind::Copod => Box::new(crate::copod::Copod::default()),
        DetectorKind::DeepSvdd => Box::new(crate::deep_svdd::DeepSvdd::with_seed(seed)),
    }
}

/// Writes `tag || payload` for a fitted detector.
pub fn save<W: Write>(det: &dyn DetectorSnapshot, mut w: W) -> Result<(), SnapshotError> {
    w.write_all(&[kind_tag(det.kind())])?;
    det.write_fitted(&mut w)?;
    w.flush()?;
    Ok(())
}

/// Convenience: [`save`] into a fresh byte vector.
pub fn save_to_vec(det: &dyn DetectorSnapshot) -> Result<Vec<u8>, SnapshotError> {
    let mut buf = Vec::new();
    save(det, &mut buf)?;
    Ok(buf)
}

/// Reads `tag || payload` back into a fitted, scoreable detector.
pub fn load<R: Read>(mut r: R) -> Result<Box<dyn DetectorSnapshot>, SnapshotError> {
    let tag = read_u8(&mut r)?;
    let kind = kind_from_tag(tag).ok_or(SnapshotError::UnknownKind(tag))?;
    load_payload(kind, &mut r)
}

/// Reads a fitted detector of a known kind (tag already consumed).
pub fn load_payload(
    kind: DetectorKind,
    r: &mut dyn Read,
) -> Result<Box<dyn DetectorSnapshot>, SnapshotError> {
    Ok(match kind {
        DetectorKind::IForest => Box::new(crate::iforest::IForest::read_fitted(r)?),
        DetectorKind::Hbos => Box::new(crate::hbos::Hbos::read_fitted(r)?),
        DetectorKind::Lof => Box::new(crate::lof::Lof::read_fitted(r)?),
        DetectorKind::Knn => Box::new(crate::knn::Knn::read_fitted(r)?),
        DetectorKind::Pca => Box::new(crate::pca::Pca::read_fitted(r)?),
        DetectorKind::Ocsvm => Box::new(crate::ocsvm::OcSvm::read_fitted(r)?),
        DetectorKind::Cblof => Box::new(crate::cblof::Cblof::read_fitted(r)?),
        DetectorKind::Cof => Box::new(crate::cof::Cof::read_fitted(r)?),
        DetectorKind::Sod => Box::new(crate::sod::Sod::read_fitted(r)?),
        DetectorKind::Ecod => Box::new(crate::ecod::Ecod::read_fitted(r)?),
        DetectorKind::Gmm => Box::new(crate::gmm::Gmm::read_fitted(r)?),
        DetectorKind::Loda => Box::new(crate::loda::Loda::read_fitted(r)?),
        DetectorKind::Copod => Box::new(crate::copod::Copod::read_fitted(r)?),
        DetectorKind::DeepSvdd => Box::new(crate::deep_svdd::DeepSvdd::read_fitted(r)?),
    })
}

// ---------------------------------------------------------------------
// Shared codec helpers (pub(crate): every detector module's impl uses
// exactly these, so the wire encoding cannot drift between detectors).
// ---------------------------------------------------------------------

pub(crate) fn write_u8(w: &mut dyn Write, v: u8) -> Result<(), SnapshotError> {
    w.write_all(&[v])?;
    Ok(())
}

pub(crate) fn write_u64(w: &mut dyn Write, v: u64) -> Result<(), SnapshotError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn write_f64(w: &mut dyn Write, v: f64) -> Result<(), SnapshotError> {
    w.write_all(&v.to_bits().to_le_bytes())?;
    Ok(())
}

pub(crate) fn write_f64s(w: &mut dyn Write, vs: &[f64]) -> Result<(), SnapshotError> {
    for &v in vs {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Writes `rows, cols, data` for a matrix.
pub(crate) fn write_matrix(w: &mut dyn Write, m: &Matrix) -> Result<(), SnapshotError> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    write_f64s(w, m.as_slice())
}

pub(crate) fn read_u8(r: &mut dyn Read) -> Result<u8, SnapshotError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u64(r: &mut dyn Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_f64(r: &mut dyn Read) -> Result<f64, SnapshotError> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Reads a length field, rejecting anything over `cap` as corruption.
pub(crate) fn read_len(
    r: &mut dyn Read,
    cap: u64,
    what: &'static str,
) -> Result<usize, SnapshotError> {
    let v = read_u64(r)?;
    if v > cap {
        return Err(SnapshotError::Corrupt(what));
    }
    Ok(v as usize)
}

pub(crate) fn read_f64s(r: &mut dyn Read, n: usize) -> Result<Vec<f64>, SnapshotError> {
    // Cap the up-front reservation: `n` comes from an untrusted length
    // field, and a tiny crafted snapshot must not force a huge
    // allocation before EOF is discovered.
    let mut out = Vec::with_capacity(n.min(8192));
    for _ in 0..n {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

/// Reads a matrix written by [`write_matrix`], capping both dimensions.
pub(crate) fn read_matrix(r: &mut dyn Read, what: &'static str) -> Result<Matrix, SnapshotError> {
    let rows = read_len(r, MAX_LEN, what)?;
    let cols = read_len(r, MAX_DIM, what)?;
    if (rows as u64).saturating_mul(cols as u64) > MAX_LEN {
        return Err(SnapshotError::Corrupt(what));
    }
    let data = read_f64s(r, rows * cols)?;
    Matrix::from_vec(rows, cols, data).map_err(|_| SnapshotError::Corrupt(what))
}

/// Save-time guard: every value must be finite, or the state is
/// rejected before a single payload byte is written.
pub(crate) fn ensure_finite(vs: &[f64], what: &'static str) -> Result<(), SnapshotError> {
    if vs.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(SnapshotError::InvalidState(what))
    }
}

/// Load-time guard: the mirror of [`ensure_finite`] for untrusted input.
pub(crate) fn check_finite(vs: &[f64], what: &'static str) -> Result<(), SnapshotError> {
    if vs.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(SnapshotError::Corrupt(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_invertible() {
        let mut tags: Vec<u8> = DetectorKind::ALL.iter().map(|&k| kind_tag(k)).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 14);
        for k in DetectorKind::ALL {
            assert_eq!(kind_from_tag(kind_tag(k)), Some(k));
        }
        assert_eq!(kind_from_tag(0), None);
        assert_eq!(kind_from_tag(200), None);
    }

    #[test]
    fn unknown_tag_is_typed_error() {
        assert!(matches!(load(&[0u8][..]), Err(SnapshotError::UnknownKind(0))));
        assert!(matches!(load(&[99u8][..]), Err(SnapshotError::UnknownKind(99))));
        // Empty input is an I/O error, not a panic.
        assert!(matches!(load(&[][..]), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn unfitted_detectors_refuse_to_save() {
        for kind in DetectorKind::ALL {
            let det = build(kind, 0);
            assert!(
                matches!(save_to_vec(det.as_ref()), Err(SnapshotError::InvalidState(_))),
                "{} saved while unfitted",
                kind.name()
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::UnknownKind(7).to_string().contains('7'));
        assert!(SnapshotError::Corrupt("x").to_string().contains('x'));
        assert!(SnapshotError::InvalidState("nan").to_string().contains("nan"));
    }
}
