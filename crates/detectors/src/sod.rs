//! Subspace Outlier Detection (Kriegel et al. 2009).
//!
//! PyOD defaults: `n_neighbors = 20`, `ref_set = 10`, `alpha = 0.8`.
//! For each point, a reference set is selected by shared-nearest-
//! neighbour similarity; the relevant axis-parallel subspace keeps the
//! dimensions whose reference-set variance is below `alpha` times the
//! average; the score is the normalised deviation from the reference mean
//! inside that subspace.

use crate::neighbors::knn_search;
use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// The SOD detector.
pub struct Sod {
    /// Candidate neighbour count (PyOD default 20).
    pub n_neighbors: usize,
    /// Reference set size (PyOD default 10).
    pub ref_set: usize,
    /// Variance threshold factor (PyOD default 0.8).
    pub alpha: f64,
    fitted: Option<Fitted>,
}

struct Fitted {
    train: Matrix,
    /// kNN index lists of every training point (for SNN similarity).
    knn_lists: Vec<Vec<usize>>,
}

impl Default for Sod {
    fn default() -> Self {
        Self { n_neighbors: 20, ref_set: 10, alpha: 0.8, fitted: None }
    }
}

/// Shared-nearest-neighbour overlap between two sorted-or-not index lists.
fn snn_overlap(a: &[usize], b: &[usize]) -> usize {
    // Lists are short (≤ 20); a quadratic scan beats hashing.
    a.iter().filter(|i| b.contains(i)).count()
}

impl Sod {
    /// Scores one point given its candidate neighbourhood in the train set.
    fn score_point(&self, f: &Fitted, row: &[f64], candidates: &[usize]) -> f64 {
        let d = f.train.cols();
        // Reference set: candidates most similar by SNN overlap with the
        // query's own candidate list.
        let mut sims: Vec<(usize, usize)> =
            candidates.iter().map(|&c| (snn_overlap(candidates, &f.knn_lists[c]), c)).collect();
        sims.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let take = self.ref_set.min(sims.len()).max(1);
        let refs: Vec<usize> = sims[..take].iter().map(|s| s.1).collect();

        // Per-dimension mean and variance of the reference set.
        let m = refs.len() as f64;
        let mut means = vec![0.0; d];
        for &r in &refs {
            for (mu, &v) in means.iter_mut().zip(f.train.row(r)) {
                *mu += v;
            }
        }
        for mu in &mut means {
            *mu /= m;
        }
        let mut vars = vec![0.0; d];
        for &r in &refs {
            for ((var, &v), &mu) in vars.iter_mut().zip(f.train.row(r)).zip(&means) {
                let c = v - mu;
                *var += c * c;
            }
        }
        for var in &mut vars {
            *var /= m;
        }
        let avg_var = vars.iter().sum::<f64>() / d as f64;
        // Relevant subspace: low-variance dimensions.
        let mut dev = 0.0;
        let mut n_sel = 0usize;
        for j in 0..d {
            if vars[j] < self.alpha * avg_var {
                let diff = row[j] - means[j];
                dev += diff * diff;
                n_sel += 1;
            }
        }
        if n_sel == 0 {
            return 0.0;
        }
        (dev / n_sel as f64).sqrt()
    }
}

impl Detector for Sod {
    fn name(&self) -> &'static str {
        "SOD"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n < 2 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let nn = knn_search(x, x, self.n_neighbors, true);
        let knn_lists = nn.into_iter().map(|n| n.indices).collect();
        self.fitted = Some(Fitted { train: x.clone(), knn_lists });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != f.train.cols() {
            return Err(DetectorError::DimensionMismatch {
                expected: f.train.cols(),
                got: x.cols(),
            });
        }
        let self_query = f.train.shape() == x.shape() && f.train.as_slice() == x.as_slice();
        let nn = knn_search(&f.train, x, self.n_neighbors, self_query);
        Ok(nn.iter().enumerate().map(|(i, n)| self.score_point(f, x.row(i), &n.indices)).collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Sod {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Sod
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.train.cols())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("sod: not fitted"))?;
        snapshot::ensure_finite(f.train.as_slice(), "sod: non-finite training point")?;
        if !self.alpha.is_finite() {
            return Err(SnapshotError::InvalidState("sod: non-finite alpha"));
        }
        snapshot::write_u64(w, self.n_neighbors as u64)?;
        snapshot::write_u64(w, self.ref_set as u64)?;
        snapshot::write_f64(w, self.alpha)?;
        snapshot::write_matrix(w, &f.train)?;
        for list in &f.knn_lists {
            snapshot::write_u64(w, list.len() as u64)?;
            for &i in list {
                snapshot::write_u64(w, i as u64)?;
            }
        }
        Ok(())
    }
}

impl Sod {
    /// Restores the training set and its kNN index lists written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_neighbors = snapshot::read_len(r, snapshot::MAX_LEN, "sod neighbour count")?;
        let ref_set = snapshot::read_len(r, snapshot::MAX_LEN, "sod reference set size")?;
        if n_neighbors == 0 || ref_set == 0 {
            return Err(SnapshotError::Corrupt("sod: zero neighbourhood size"));
        }
        let alpha = snapshot::read_f64(r)?;
        if !alpha.is_finite() {
            return Err(SnapshotError::Corrupt("sod: non-finite alpha"));
        }
        let train = snapshot::read_matrix(r, "sod training matrix")?;
        if train.rows() < 2 || train.cols() == 0 {
            return Err(SnapshotError::Corrupt("sod: degenerate training matrix"));
        }
        snapshot::check_finite(train.as_slice(), "sod: non-finite training point")?;
        let mut knn_lists = Vec::with_capacity(train.rows().min(8192));
        for _ in 0..train.rows() {
            let len = snapshot::read_len(r, train.rows() as u64, "sod knn list length")?;
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let i = snapshot::read_len(r, snapshot::MAX_LEN, "sod knn index")?;
                if i >= train.rows() {
                    return Err(SnapshotError::Corrupt("sod: knn index out of range"));
                }
                list.push(i);
            }
            knn_lists.push(list);
        }
        Ok(Self { n_neighbors, ref_set, alpha, fitted: Some(Fitted { train, knn_lists }) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn subspace_outlier_detected() {
        // Inliers: tight in dim 0 (the relevant subspace), uniform noise in
        // dim 1. The outlier deviates only in dim 0.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut rows: Vec<Vec<f64>> =
            (0..60).map(|_| vec![rng.gen_range(-0.05..0.05), rng.gen_range(-5.0..5.0)]).collect();
        rows.push(vec![3.0, 0.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut sod = Sod { n_neighbors: 12, ref_set: 6, ..Sod::default() };
        let s = sod.fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 60, "scores tail: {:?}", &s[55..]);
    }

    #[test]
    fn snn_overlap_counts_shared() {
        assert_eq!(snn_overlap(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(snn_overlap(&[], &[1]), 0);
        assert_eq!(snn_overlap(&[5], &[5]), 1);
    }

    #[test]
    fn inliers_score_lower_than_outlier_on_average() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                vec![rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1), rng.gen_range(-3.0..3.0)]
            })
            .collect();
        rows.push(vec![2.0, -2.0, 0.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let s = Sod::default().fit_score(&x).unwrap();
        let inlier_mean: f64 = s[..50].iter().sum::<f64>() / 50.0;
        assert!(s[50] > 3.0 * inlier_mean, "outlier {} vs mean {}", s[50], inlier_mean);
    }

    #[test]
    fn degenerate_variance_yields_finite_scores() {
        let x = Matrix::filled(10, 3, 2.0);
        let s = Sod::default().fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guards() {
        let sod = Sod::default();
        assert_eq!(sod.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut sod = Sod::default();
        assert_eq!(sod.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
    }
}
