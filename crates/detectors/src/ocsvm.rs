//! One-class SVM (Schölkopf et al. 1999) with an SMO solver built here.
//!
//! PyOD/sklearn defaults: RBF kernel, `nu = 0.5`,
//! `gamma = 1 / (d · Var(X))` (`"scale"`). The dual problem
//!
//! ```text
//! min_α ½ αᵀ K α   s.t.  0 ≤ α_i ≤ 1/(νn),  Σ α_i = 1
//! ```
//!
//! is solved by libsvm-style sequential minimal optimisation with
//! maximal-violating-pair working-set selection. The anomaly score is
//! `ρ − Σ_i α_i K(x_i, x)` (negated sklearn decision function, higher =
//! more anomalous).

use crate::traits::{Detector, DetectorError};
use uadb_linalg::colstats::total_variance;
use uadb_linalg::distance::sq_euclidean;
use uadb_linalg::Matrix;

/// KKT violation tolerance (libsvm default 1e-3).
const TOL: f64 = 1e-3;

/// The one-class SVM detector.
pub struct OcSvm {
    /// Fraction-of-outliers / margin-errors bound (sklearn default 0.5).
    pub nu: f64,
    /// SMO iteration cap.
    pub max_iter: usize,
    fitted: Option<Fitted>,
}

struct Fitted {
    /// Support vectors (training rows with α > 0).
    support: Matrix,
    /// Their dual coefficients.
    alpha: Vec<f64>,
    gamma: f64,
    rho: f64,
}

impl Default for OcSvm {
    fn default() -> Self {
        Self { nu: 0.5, max_iter: 20_000, fitted: None }
    }
}

#[inline]
fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    (-gamma * sq_euclidean(a, b)).exp()
}

impl Detector for OcSvm {
    fn name(&self) -> &'static str {
        "OCSVM"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n < 2 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let var = total_variance(x);
        let gamma = if var > 0.0 { 1.0 / (d as f64 * var) } else { 1.0 / d as f64 };

        // Upper box bound; nu in (0, 1].
        let nu = self.nu.clamp(1e-3, 1.0);
        let c = 1.0 / (nu * n as f64);

        // Kernel matrix (n ≤ a few thousand at suite scale).
        let mut kmat = vec![0.0; n * n];
        for i in 0..n {
            kmat[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let k = rbf(x.row(i), x.row(j), gamma);
                kmat[i * n + j] = k;
                kmat[j * n + i] = k;
            }
        }

        // libsvm one-class init: fill the first ⌊νn⌋ alphas at the box
        // bound, the next takes the remainder.
        let mut alpha = vec![0.0; n];
        let n_full = (nu * n as f64).floor() as usize;
        let mut remaining = 1.0;
        for a in alpha.iter_mut().take(n_full.min(n)) {
            *a = c.min(remaining);
            remaining -= *a;
        }
        if remaining > 0.0 && n_full < n {
            alpha[n_full] = remaining;
        }

        // Gradient G = K α.
        let mut grad = vec![0.0; n];
        for i in 0..n {
            let krow = &kmat[i * n..(i + 1) * n];
            grad[i] = krow.iter().zip(&alpha).map(|(k, a)| k * a).sum();
        }

        // SMO with maximal violating pair.
        for _iter in 0..self.max_iter {
            // i: smallest gradient among α_i < C (can grow);
            // j: largest gradient among α_j > 0 (can shrink).
            let mut i_best = usize::MAX;
            let mut i_val = f64::INFINITY;
            let mut j_best = usize::MAX;
            let mut j_val = f64::NEG_INFINITY;
            for t in 0..n {
                if alpha[t] < c - 1e-15 && grad[t] < i_val {
                    i_val = grad[t];
                    i_best = t;
                }
                if alpha[t] > 1e-15 && grad[t] > j_val {
                    j_val = grad[t];
                    j_best = t;
                }
            }
            if i_best == usize::MAX || j_best == usize::MAX || j_val - i_val < TOL {
                break; // KKT satisfied
            }
            let (i, j) = (i_best, j_best);
            let kii = kmat[i * n + i];
            let kjj = kmat[j * n + j];
            let kij = kmat[i * n + j];
            let denom = (kii + kjj - 2.0 * kij).max(1e-12);
            // Move t mass from j to i.
            let mut t = (grad[j] - grad[i]) / denom;
            t = t.min(alpha[j]).min(c - alpha[i]);
            if t <= 0.0 {
                break;
            }
            alpha[i] += t;
            alpha[j] -= t;
            let (ki, kj) = (i * n, j * n);
            for g in 0..n {
                grad[g] += t * (kmat[ki + g] - kmat[kj + g]);
            }
        }

        // rho = average gradient over free support vectors (0 < α < C);
        // fall back to the mid-violation estimate if none are free.
        let free: Vec<usize> =
            (0..n).filter(|&t| alpha[t] > 1e-12 && alpha[t] < c - 1e-12).collect();
        let rho = if free.is_empty() {
            let lo = (0..n)
                .filter(|&t| alpha[t] > 1e-12)
                .map(|t| grad[t])
                .fold(f64::NEG_INFINITY, f64::max);
            let hi = (0..n)
                .filter(|&t| alpha[t] < c - 1e-12)
                .map(|t| grad[t])
                .fold(f64::INFINITY, f64::min);
            0.5 * (lo + hi)
        } else {
            free.iter().map(|&t| grad[t]).sum::<f64>() / free.len() as f64
        };

        // Keep only support vectors for scoring.
        let sv: Vec<usize> = (0..n).filter(|&t| alpha[t] > 1e-12).collect();
        let support = x.select_rows(&sv);
        let alpha: Vec<f64> = sv.iter().map(|&t| alpha[t]).collect();
        self.fitted = Some(Fitted { support, alpha, gamma, rho });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != f.support.cols() {
            return Err(DetectorError::DimensionMismatch {
                expected: f.support.cols(),
                got: x.cols(),
            });
        }
        Ok(x.row_iter()
            .map(|row| {
                let decision: f64 = f
                    .support
                    .row_iter()
                    .zip(&f.alpha)
                    .map(|(sv, &a)| a * rbf(sv, row, f.gamma))
                    .sum();
                f.rho - decision
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for OcSvm {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Ocsvm
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.support.cols())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("ocsvm: not fitted"))?;
        snapshot::ensure_finite(f.support.as_slice(), "ocsvm: non-finite support vector")?;
        snapshot::ensure_finite(&f.alpha, "ocsvm: non-finite dual coefficient")?;
        if !(f.gamma.is_finite() && f.gamma > 0.0 && f.rho.is_finite()) {
            return Err(SnapshotError::InvalidState("ocsvm: invalid kernel constants"));
        }
        snapshot::write_matrix(w, &f.support)?;
        snapshot::write_f64s(w, &f.alpha)?;
        snapshot::write_f64(w, f.gamma)?;
        snapshot::write_f64(w, f.rho)
    }
}

impl OcSvm {
    /// Restores the support vectors, dual coefficients and kernel
    /// constants written by [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let support = snapshot::read_matrix(r, "ocsvm support vectors")?;
        if support.rows() == 0 || support.cols() == 0 {
            return Err(SnapshotError::Corrupt("ocsvm: empty support set"));
        }
        snapshot::check_finite(support.as_slice(), "ocsvm: non-finite support vector")?;
        let alpha = snapshot::read_f64s(r, support.rows())?;
        snapshot::check_finite(&alpha, "ocsvm: non-finite dual coefficient")?;
        let gamma = snapshot::read_f64(r)?;
        let rho = snapshot::read_f64(r)?;
        if !(gamma.is_finite() && gamma > 0.0 && rho.is_finite()) {
            return Err(SnapshotError::Corrupt("ocsvm: invalid kernel constants"));
        }
        let defaults = OcSvm::default();
        Ok(Self {
            nu: defaults.nu,
            max_iter: defaults.max_iter,
            fitted: Some(Fitted { support, alpha, gamma, rho }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let t = i as f64 * std::f64::consts::TAU / 80.0;
                vec![t.cos(), t.sin()]
            })
            .collect();
        rows.push(vec![6.0, 6.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn far_point_scores_highest() {
        let x = ring_with_outlier();
        let s = OcSvm::default().fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 80);
    }

    #[test]
    fn dual_constraints_hold() {
        let x = ring_with_outlier();
        let mut svm = OcSvm::default();
        svm.fit(&x).unwrap();
        let f = svm.fitted.as_ref().unwrap();
        let sum: f64 = f.alpha.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "Σα = {sum}");
        let c = 1.0 / (0.5 * 81.0);
        assert!(f.alpha.iter().all(|&a| a > 0.0 && a <= c + 1e-9));
    }

    #[test]
    fn nu_bounds_margin_errors() {
        // With nu = 0.5 roughly half the training points lie outside the
        // learned boundary (score > 0) — the nu-property.
        let x = ring_with_outlier();
        let mut svm = OcSvm::default();
        let s = svm.fit_score(&x).unwrap();
        let outside = s.iter().filter(|&&v| v > 0.0).count();
        let frac = outside as f64 / s.len() as f64;
        assert!((0.25..=0.75).contains(&frac), "outside fraction {frac}");
    }

    #[test]
    fn monotone_in_distance_from_mass() {
        let x = ring_with_outlier();
        let mut svm = OcSvm::default();
        svm.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 3.0], vec![0.0, 9.0]]).unwrap();
        let s = svm.score(&q).unwrap();
        assert!(s[0] < s[1] && s[1] < s[2], "scores {s:?}");
    }

    #[test]
    fn guards() {
        let svm = OcSvm::default();
        assert_eq!(svm.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut svm = OcSvm::default();
        assert_eq!(svm.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
    }

    #[test]
    fn constant_data_does_not_crash() {
        let x = Matrix::filled(10, 2, 1.0);
        let s = OcSvm::default().fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }
}
