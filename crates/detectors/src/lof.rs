//! Local Outlier Factor (Breunig et al. 2000).
//!
//! PyOD default: `n_neighbors = 20`. LOF compares each point's local
//! reachability density (lrd) with the densities of its neighbours:
//! `LOF(p) = mean_{o ∈ N_k(p)} lrd(o) / lrd(p)`, with
//! `lrd(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)` and
//! `reach-dist_k(p, o) = max(k-distance(o), d(p, o))`.

use crate::neighbors::{knn_search, Neighbors};
use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// Density used in place of an infinite lrd (duplicate-point clusters
/// have zero reachability distance; sklearn caps the same way).
const LRD_CAP: f64 = 1e10;

/// The LOF detector.
pub struct Lof {
    /// Neighbour count (PyOD default 20).
    pub n_neighbors: usize,
    fitted: Option<Fitted>,
}

struct Fitted {
    train: Matrix,
    /// k-distance of every training point.
    k_dist: Vec<f64>,
    /// Local reachability density of every training point.
    lrd: Vec<f64>,
}

impl Default for Lof {
    fn default() -> Self {
        Self { n_neighbors: 20, fitted: None }
    }
}

impl Lof {
    /// lrd of each query given its neighbour list in the training set.
    fn lrds(&self, fitted: &Fitted, nn: &[Neighbors]) -> Vec<f64> {
        nn.iter()
            .map(|n| {
                let mut sum = 0.0;
                for (&j, &d) in n.indices.iter().zip(&n.distances) {
                    sum += d.max(fitted.k_dist[j]);
                }
                let mean = sum / n.indices.len().max(1) as f64;
                if mean <= 0.0 {
                    LRD_CAP
                } else {
                    1.0 / mean
                }
            })
            .collect()
    }
}

impl Detector for Lof {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        if n < 2 {
            return Err(DetectorError::EmptyInput);
        }
        let nn = knn_search(x, x, self.n_neighbors, true);
        let k_dist: Vec<f64> =
            nn.iter().map(|n| n.distances.last().copied().unwrap_or(0.0)).collect();
        let mut fitted = Fitted { train: x.clone(), k_dist, lrd: Vec::new() };
        fitted.lrd = self.lrds(&fitted, &nn);
        self.fitted = Some(fitted);
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let fitted = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        if x.cols() != fitted.train.cols() {
            return Err(DetectorError::DimensionMismatch {
                expected: fitted.train.cols(),
                got: x.cols(),
            });
        }
        let self_query =
            fitted.train.shape() == x.shape() && fitted.train.as_slice() == x.as_slice();
        let nn = knn_search(&fitted.train, x, self.n_neighbors, self_query);
        let query_lrd = self.lrds(fitted, &nn);
        Ok(nn
            .iter()
            .zip(&query_lrd)
            .map(|(n, &lrd_p)| {
                let neighbour_lrd_sum: f64 = n.indices.iter().map(|&j| fitted.lrd[j]).sum();
                let mean = neighbour_lrd_sum / n.indices.len().max(1) as f64;
                if lrd_p <= 0.0 {
                    1.0
                } else {
                    mean / lrd_p
                }
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Lof {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Lof
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.train.cols())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("lof: not fitted"))?;
        snapshot::ensure_finite(f.train.as_slice(), "lof: non-finite training point")?;
        snapshot::ensure_finite(&f.k_dist, "lof: non-finite k-distance")?;
        snapshot::ensure_finite(&f.lrd, "lof: non-finite lrd")?;
        snapshot::write_u64(w, self.n_neighbors as u64)?;
        snapshot::write_matrix(w, &f.train)?;
        snapshot::write_f64s(w, &f.k_dist)?;
        snapshot::write_f64s(w, &f.lrd)
    }
}

impl Lof {
    /// Restores the training set plus the per-point k-distances and
    /// local reachability densities written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_neighbors = snapshot::read_len(r, snapshot::MAX_LEN, "lof neighbour count")?;
        if n_neighbors == 0 {
            return Err(SnapshotError::Corrupt("lof: zero neighbours"));
        }
        let train = snapshot::read_matrix(r, "lof training matrix")?;
        if train.rows() < 2 || train.cols() == 0 {
            return Err(SnapshotError::Corrupt("lof: degenerate training matrix"));
        }
        snapshot::check_finite(train.as_slice(), "lof: non-finite training point")?;
        let k_dist = snapshot::read_f64s(r, train.rows())?;
        snapshot::check_finite(&k_dist, "lof: non-finite k-distance")?;
        let lrd = snapshot::read_f64s(r, train.rows())?;
        snapshot::check_finite(&lrd, "lof: non-finite lrd")?;
        Ok(Self { n_neighbors, fitted: Some(Fitted { train, k_dist, lrd }) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_plus_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        rows.push(vec![30.0, 30.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_has_lof_well_above_one() {
        let x = grid_plus_outlier();
        let mut lof = Lof { n_neighbors: 5, fitted: None };
        let s = lof.fit_score(&x).unwrap();
        let outlier = s[49];
        assert!(outlier > 2.0, "outlier LOF {outlier} should be >> 1");
        // Interior grid points sit near density parity (LOF ≈ 1).
        let interior = s[24]; // centre of the grid
        assert!((interior - 1.0).abs() < 0.3, "interior LOF {interior}");
    }

    #[test]
    fn uniform_data_scores_near_one() {
        let x = Matrix::from_vec(20, 1, (0..20).map(|i| i as f64).collect()).unwrap();
        let mut lof = Lof { n_neighbors: 3, fitted: None };
        let s = lof.fit_score(&x).unwrap();
        // Edge points have slightly elevated LOF; middle points near 1.
        assert!((s[10] - 1.0).abs() < 0.3);
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        let mut rows = vec![vec![1.0, 1.0]; 10];
        rows.push(vec![5.0, 5.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut lof = Lof { n_neighbors: 3, fitted: None };
        let s = lof.fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()), "scores: {s:?}");
    }

    #[test]
    fn out_of_sample_scoring() {
        let x = grid_plus_outlier();
        let mut lof = Lof { n_neighbors: 5, fitted: None };
        lof.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![3.0, 3.0], vec![100.0, 100.0]]).unwrap();
        let s = lof.score(&q).unwrap();
        assert!(s[1] > s[0], "far query should outscore interior query");
    }

    #[test]
    fn guards() {
        let lof = Lof::default();
        assert_eq!(lof.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut lof = Lof::default();
        assert_eq!(lof.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
    }
}
