//! ECOD: unsupervised outlier detection using Empirical Cumulative
//! Distribution functions (Li et al. 2022).
//!
//! Parameter-free. Per dimension the left/right tail probabilities come
//! from the ECDF; per sample ECOD aggregates `−log` tail probabilities
//! three ways (left, right, skewness-selected) and takes the maximum of
//! the three aggregates — mirroring PyOD's `ecod.py`.

use crate::traits::{Detector, DetectorError};
use uadb_linalg::Matrix;

/// Sorted per-dimension training values plus skewness sign.
pub(crate) struct EcdfDim {
    sorted: Vec<f64>,
    /// Sample skewness (biased, `m3 / m2^{3/2}` — SciPy default).
    pub(crate) skewness: f64,
}

impl EcdfDim {
    pub(crate) fn build(mut values: Vec<f64>) -> Self {
        let skewness = sample_skewness(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self { sorted: values, skewness }
    }

    /// Left tail probability `P(X <= v)`, lower-bounded away from zero so
    /// `-log` stays finite.
    pub(crate) fn left(&self, v: f64) -> f64 {
        let n = self.sorted.len() as f64;
        let count = self.sorted.partition_point(|&s| s <= v) as f64;
        (count / n).max(1.0 / (n + 1.0))
    }

    /// Right tail probability `P(X >= v)`.
    pub(crate) fn right(&self, v: f64) -> f64 {
        let n = self.sorted.len() as f64;
        let below = self.sorted.partition_point(|&s| s < v) as f64;
        ((n - below) / n).max(1.0 / (n + 1.0))
    }
}

/// Biased sample skewness `g1 = m3 / m2^{3/2}`; 0 for degenerate input.
pub(crate) fn sample_skewness(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n;
    let m2 = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if m2 <= 1e-300 {
        return 0.0;
    }
    let m3 = values.iter().map(|v| (v - mean) * (v - mean) * (v - mean)).sum::<f64>() / n;
    m3 / m2.powf(1.5)
}

/// The ECOD detector.
#[derive(Default)]
pub struct Ecod {
    dims: Vec<EcdfDim>,
}

impl Detector for Ecod {
    fn name(&self) -> &'static str {
        "ECOD"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        self.dims = (0..d).map(|j| EcdfDim::build(x.col(j))).collect();
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.dims.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.dims.len() {
            return Err(DetectorError::DimensionMismatch {
                expected: self.dims.len(),
                got: x.cols(),
            });
        }
        Ok(x.row_iter()
            .map(|row| {
                let mut o_left = 0.0;
                let mut o_right = 0.0;
                let mut o_auto = 0.0;
                for (&v, dim) in row.iter().zip(&self.dims) {
                    let ul = -dim.left(v).ln();
                    let ur = -dim.right(v).ln();
                    o_left += ul;
                    o_right += ur;
                    // Negative skew: the informative tail is the left one.
                    o_auto += if dim.skewness < 0.0 { ul } else { ur };
                }
                o_left.max(o_right).max(o_auto)
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

/// Shared ECDF-table codec for ECOD and COPOD (identical fitted state,
/// different aggregation at score time).
pub(crate) fn write_dims(dims: &[EcdfDim], w: &mut dyn Write) -> Result<(), SnapshotError> {
    snapshot::write_u64(w, dims.len() as u64)?;
    for dim in dims {
        if !dim.skewness.is_finite() {
            return Err(SnapshotError::InvalidState("ecdf: non-finite skewness"));
        }
        snapshot::ensure_finite(&dim.sorted, "ecdf: non-finite training value")?;
        snapshot::write_f64(w, dim.skewness)?;
        snapshot::write_u64(w, dim.sorted.len() as u64)?;
        snapshot::write_f64s(w, &dim.sorted)?;
    }
    Ok(())
}

/// Reads the tables written by [`write_dims`], re-validating sortedness
/// (tail lookups binary-search, so order is a correctness invariant).
pub(crate) fn read_dims(r: &mut dyn Read) -> Result<Vec<EcdfDim>, SnapshotError> {
    let d = snapshot::read_len(r, snapshot::MAX_DIM, "ecdf dimension count")?;
    if d == 0 {
        return Err(SnapshotError::Corrupt("ecdf: zero dimensions"));
    }
    let mut dims = Vec::with_capacity(d.min(8192));
    for _ in 0..d {
        let skewness = snapshot::read_f64(r)?;
        if !skewness.is_finite() {
            return Err(SnapshotError::Corrupt("ecdf: non-finite skewness"));
        }
        let n = snapshot::read_len(r, snapshot::MAX_LEN, "ecdf sample count")?;
        if n == 0 {
            return Err(SnapshotError::Corrupt("ecdf: empty dimension"));
        }
        let sorted = snapshot::read_f64s(r, n)?;
        snapshot::check_finite(&sorted, "ecdf: non-finite training value")?;
        if sorted.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Corrupt("ecdf: values not sorted"));
        }
        dims.push(EcdfDim { sorted, skewness });
    }
    Ok(dims)
}

impl DetectorSnapshot for Ecod {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Ecod
    }

    fn fitted_dim(&self) -> usize {
        self.dims.len()
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.dims.is_empty() {
            return Err(SnapshotError::InvalidState("ecod: not fitted"));
        }
        write_dims(&self.dims, w)
    }
}

impl Ecod {
    /// Restores the per-dimension ECDF tables written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        Ok(Self { dims: read_dims(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_points_score_higher_than_median() {
        let x = Matrix::from_vec(101, 1, (0..101).map(|i| i as f64).collect()).unwrap();
        let s = Ecod::default().fit_score(&x).unwrap();
        assert!(s[0] > s[50], "left tail {} vs median {}", s[0], s[50]);
        assert!(s[100] > s[50], "right tail {} vs median {}", s[100], s[50]);
    }

    #[test]
    fn skewness_reference() {
        // Symmetric data has (near) zero skewness.
        assert!(sample_skewness(&[1.0, 2.0, 3.0]).abs() < 1e-12);
        // Right-tailed data has positive skewness.
        assert!(sample_skewness(&[1.0, 1.0, 1.0, 10.0]) > 0.0);
        // Degenerate cases.
        assert_eq!(sample_skewness(&[5.0]), 0.0);
        assert_eq!(sample_skewness(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn ecdf_left_right_consistency() {
        let dim = EcdfDim::build(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((dim.left(2.5) - 0.5).abs() < 1e-12);
        assert!((dim.right(2.5) - 0.5).abs() < 1e-12);
        assert!((dim.left(4.0) - 1.0).abs() < 1e-12);
        // Query below all data: left prob floors at 1/(n+1), not 0.
        assert!(dim.left(-100.0) > 0.0);
        assert!((dim.right(-100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_sample_extremes_score_high() {
        let x = Matrix::from_vec(50, 2, (0..100).map(|i| (i % 10) as f64).collect()).unwrap();
        let mut e = Ecod::default();
        e.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![4.0, 5.0], vec![1000.0, -1000.0]]).unwrap();
        let s = e.score(&q).unwrap();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn guards() {
        let e = Ecod::default();
        assert_eq!(e.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut e = Ecod::default();
        assert_eq!(e.fit(&Matrix::zeros(0, 1)), Err(DetectorError::EmptyInput));
    }
}
