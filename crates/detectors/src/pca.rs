//! Principal-component classifier (Shyu et al. 2003), PyOD's `PCA`
//! detector with `weighted=True` over all components.
//!
//! After centring, the anomaly score of `x` is the eigenvalue-weighted
//! squared distance in component space: `Σ_j z_j² / λ_j` over components
//! with non-negligible variance — i.e. the Mahalanobis distance, which
//! penalises deviation along minor components heavily (those capture the
//! data's invariants).

use crate::traits::{Detector, DetectorError};
use uadb_linalg::colstats::{col_means, covariance};
use uadb_linalg::eigen::sym_eigen;
use uadb_linalg::Matrix;

/// Relative eigenvalue cutoff below which a component is ignored.
const EIGEN_TOL: f64 = 1e-10;

/// The PCA detector.
#[derive(Default)]
pub struct Pca {
    fitted: Option<Fitted>,
}

struct Fitted {
    means: Vec<f64>,
    /// Eigenvectors as columns, one per retained component.
    components: Matrix,
    /// Matching eigenvalues (descending).
    eigenvalues: Vec<f64>,
}

impl Detector for Pca {
    fn name(&self) -> &'static str {
        "PCA"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n < 2 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let cov = covariance(x)?;
        let eig = sym_eigen(&cov)?;
        let max_ev = eig.values.first().copied().unwrap_or(0.0).max(1e-300);
        // Retain components with non-degenerate variance.
        let keep: Vec<usize> = eig
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > EIGEN_TOL * max_ev && v > 0.0)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            return Err(DetectorError::NoConvergence("pca: no informative components"));
        }
        let components = eig.vectors.select_cols(&keep);
        let eigenvalues: Vec<f64> = keep.iter().map(|&i| eig.values[i]).collect();
        self.fitted = Some(Fitted { means: col_means(x), components, eigenvalues });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        let f = self.fitted.as_ref().ok_or(DetectorError::NotFitted)?;
        let d = f.means.len();
        if x.cols() != d {
            return Err(DetectorError::DimensionMismatch { expected: d, got: x.cols() });
        }
        let k = f.eigenvalues.len();
        let mut centered = vec![0.0; d];
        Ok(x.row_iter()
            .map(|row| {
                for ((c, &v), &m) in centered.iter_mut().zip(row).zip(&f.means) {
                    *c = v - m;
                }
                let mut score = 0.0;
                for j in 0..k {
                    // z_j = centered . component_j
                    let mut z = 0.0;
                    for (i, &c) in centered.iter().enumerate() {
                        z += c * f.components.get(i, j);
                    }
                    score += z * z / f.eigenvalues[j];
                }
                score
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Pca {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Pca
    }

    fn fitted_dim(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.means.len())
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        let f = self.fitted.as_ref().ok_or(SnapshotError::InvalidState("pca: not fitted"))?;
        snapshot::ensure_finite(&f.means, "pca: non-finite mean")?;
        snapshot::ensure_finite(f.components.as_slice(), "pca: non-finite component")?;
        if !f.eigenvalues.iter().all(|v| v.is_finite() && *v > 0.0) {
            return Err(SnapshotError::InvalidState("pca: non-positive eigenvalue"));
        }
        snapshot::write_u64(w, f.means.len() as u64)?;
        snapshot::write_f64s(w, &f.means)?;
        snapshot::write_matrix(w, &f.components)?;
        snapshot::write_u64(w, f.eigenvalues.len() as u64)?;
        snapshot::write_f64s(w, &f.eigenvalues)
    }
}

impl Pca {
    /// Restores the centring means, retained components and eigenvalues
    /// written by [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let d = snapshot::read_len(r, snapshot::MAX_DIM, "pca dimension count")?;
        if d == 0 {
            return Err(SnapshotError::Corrupt("pca: zero dimensions"));
        }
        let means = snapshot::read_f64s(r, d)?;
        snapshot::check_finite(&means, "pca: non-finite mean")?;
        let components = snapshot::read_matrix(r, "pca components")?;
        if components.rows() != d {
            return Err(SnapshotError::Corrupt("pca: component height mismatch"));
        }
        snapshot::check_finite(components.as_slice(), "pca: non-finite component")?;
        let k = snapshot::read_len(r, snapshot::MAX_DIM, "pca eigenvalue count")?;
        if k != components.cols() || k == 0 {
            return Err(SnapshotError::Corrupt("pca: eigenvalue count mismatch"));
        }
        let eigenvalues = snapshot::read_f64s(r, k)?;
        // Scoring divides by each eigenvalue; zero/negative/NaN would
        // poison every score.
        if !eigenvalues.iter().all(|v| v.is_finite() && *v > 0.0) {
            return Err(SnapshotError::Corrupt("pca: non-positive eigenvalue"));
        }
        Ok(Self { fitted: Some(Fitted { means, components, eigenvalues }) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn correlated_cloud() -> Matrix {
        // y ≈ 2x with small noise; an anomaly breaks the correlation.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|_| {
                let t: f64 = rng.gen_range(-1.0..1.0);
                let noise: f64 = rng.gen_range(-0.05..0.05);
                vec![t, 2.0 * t + noise]
            })
            .collect();
        rows.push(vec![0.5, -1.0]); // far off the principal axis
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn off_axis_point_scores_highest() {
        let x = correlated_cloud();
        let s = Pca::default().fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 100);
    }

    #[test]
    fn score_is_mahalanobis_like() {
        // For isotropic data the score approximates squared z-norm.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> =
            (0..500).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut p = Pca::default();
        p.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 3.0]]).unwrap();
        let s = p.score(&q).unwrap();
        assert!(s[1] > 10.0 * s[0].max(1e-9), "centre {} vs corner {}", s[0], s[1]);
    }

    #[test]
    fn degenerate_dimension_handled() {
        // One constant column: its component must be dropped, not divide
        // by zero.
        let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 7.0]).collect();
        rows.push(vec![25.0, 7.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let s = Pca::default().fit_score(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guards() {
        let p = Pca::default();
        assert_eq!(p.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut p = Pca::default();
        assert_eq!(p.fit(&Matrix::zeros(1, 2)), Err(DetectorError::EmptyInput));
        p.fit(&correlated_cloud()).unwrap();
        assert!(matches!(
            p.score(&Matrix::zeros(1, 9)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
    }
}
