//! LODA: Lightweight On-line Detector of Anomalies (Pevný 2016).
//!
//! PyOD defaults: `n_random_cuts = 100` sparse random projections (each
//! with ⌈√d⌉ non-zero N(0,1) weights) and 10-bin histograms of the
//! projected training data. The anomaly score is the mean negative log
//! probability mass across projections.

use crate::traits::{Detector, DetectorError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use uadb_linalg::Matrix;

/// Probability floor: an empty bin contributes `-ln(EPS)` like PyOD's
/// `1e-12` smoothing.
const EPS: f64 = 1e-12;

/// One random projection with its fitted histogram.
struct Cut {
    /// Sparse weights: (feature index, weight).
    weights: Vec<(usize, f64)>,
    lo: f64,
    width: f64,
    /// Probability mass per bin.
    probs: Vec<f64>,
}

impl Cut {
    fn project(&self, row: &[f64]) -> f64 {
        self.weights.iter().map(|&(j, w)| w * row[j]).sum()
    }

    fn log_prob(&self, v: f64) -> f64 {
        let n_bins = self.probs.len();
        let b = ((v - self.lo) / self.width).floor();
        let p = if b < 0.0 || b as usize >= n_bins {
            0.0 // out of the training range: no mass
        } else {
            self.probs[b as usize]
        };
        (p + EPS).ln()
    }
}

/// The LODA detector.
pub struct Loda {
    /// Number of projections (PyOD default 100).
    pub n_random_cuts: usize,
    /// Histogram bins (PyOD default 10).
    pub n_bins: usize,
    seed: u64,
    cuts: Vec<Cut>,
    n_features: usize,
}

impl Loda {
    /// PyOD defaults with an explicit RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { n_random_cuts: 100, n_bins: 10, seed, cuts: Vec::new(), n_features: 0 }
    }
}

impl Default for Loda {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Detector for Loda {
    fn name(&self) -> &'static str {
        "LODA"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nnz = (d as f64).sqrt().ceil() as usize;
        let mut features: Vec<usize> = (0..d).collect();
        let mut projected = vec![0.0; n];
        self.cuts = (0..self.n_random_cuts)
            .map(|_| {
                features.shuffle(&mut rng);
                let weights: Vec<(usize, f64)> = features[..nnz.min(d)]
                    .iter()
                    .map(|&j| {
                        // Box-Muller standard normal weight.
                        let u1: f64 = 1.0 - rng.gen::<f64>();
                        let u2: f64 = rng.gen();
                        let w = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        (j, w)
                    })
                    .collect();
                for (p, row) in projected.iter_mut().zip(x.row_iter()) {
                    *p = weights.iter().map(|&(j, w)| w * row[j]).sum();
                }
                let lo = projected.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = projected.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let width = ((hi - lo) / self.n_bins as f64).max(1e-12);
                let mut counts = vec![0usize; self.n_bins];
                for &p in &projected {
                    let mut b = ((p - lo) / width) as usize;
                    if b >= self.n_bins {
                        b = self.n_bins - 1;
                    }
                    counts[b] += 1;
                }
                let probs = counts.iter().map(|&c| c as f64 / n as f64).collect();
                Cut { weights, lo, width, probs }
            })
            .collect();
        self.n_features = d;
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.cuts.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(DetectorError::DimensionMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let inv = 1.0 / self.cuts.len() as f64;
        Ok(x.row_iter()
            .map(|row| {
                -self.cuts.iter().map(|cut| cut.log_prob(cut.project(row))).sum::<f64>() * inv
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for Loda {
    fn kind(&self) -> DetectorKind {
        DetectorKind::Loda
    }

    fn fitted_dim(&self) -> usize {
        self.n_features
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.cuts.is_empty() {
            return Err(SnapshotError::InvalidState("loda: not fitted"));
        }
        for cut in &self.cuts {
            if !(cut.lo.is_finite() && cut.width.is_finite() && cut.width > 0.0) {
                return Err(SnapshotError::InvalidState("loda: invalid histogram geometry"));
            }
            if !cut.weights.iter().all(|(_, w)| w.is_finite()) {
                return Err(SnapshotError::InvalidState("loda: non-finite projection weight"));
            }
            snapshot::ensure_finite(&cut.probs, "loda: non-finite bin probability")?;
        }
        snapshot::write_u64(w, self.n_features as u64)?;
        snapshot::write_u64(w, self.cuts.len() as u64)?;
        for cut in &self.cuts {
            snapshot::write_u64(w, cut.weights.len() as u64)?;
            for &(j, weight) in &cut.weights {
                snapshot::write_u64(w, j as u64)?;
                snapshot::write_f64(w, weight)?;
            }
            snapshot::write_f64(w, cut.lo)?;
            snapshot::write_f64(w, cut.width)?;
            snapshot::write_u64(w, cut.probs.len() as u64)?;
            snapshot::write_f64s(w, &cut.probs)?;
        }
        Ok(())
    }
}

impl Loda {
    /// Restores the sparse projections and their histograms written by
    /// [`DetectorSnapshot::write_fitted`].
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_features = snapshot::read_len(r, snapshot::MAX_DIM, "loda feature count")?;
        if n_features == 0 {
            return Err(SnapshotError::Corrupt("loda: zero features"));
        }
        let n_cuts = snapshot::read_len(r, 1 << 20, "loda cut count")?;
        if n_cuts == 0 {
            return Err(SnapshotError::Corrupt("loda: no projections"));
        }
        let mut cuts = Vec::with_capacity(n_cuts.min(8192));
        for _ in 0..n_cuts {
            let nnz = snapshot::read_len(r, n_features as u64, "loda weight count")?;
            if nnz == 0 {
                return Err(SnapshotError::Corrupt("loda: empty projection"));
            }
            let mut weights = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                // `project` indexes query rows by `j`; bounds-check it
                // so a corrupt file cannot cause an OOB access.
                let j = snapshot::read_len(r, snapshot::MAX_DIM, "loda feature index")?;
                if j >= n_features {
                    return Err(SnapshotError::Corrupt("loda: feature index out of range"));
                }
                let weight = snapshot::read_f64(r)?;
                if !weight.is_finite() {
                    return Err(SnapshotError::Corrupt("loda: non-finite projection weight"));
                }
                weights.push((j, weight));
            }
            let lo = snapshot::read_f64(r)?;
            let width = snapshot::read_f64(r)?;
            if !(lo.is_finite() && width.is_finite() && width > 0.0) {
                return Err(SnapshotError::Corrupt("loda: invalid histogram geometry"));
            }
            let n_bins = snapshot::read_len(r, 1 << 20, "loda bin count")?;
            if n_bins == 0 {
                return Err(SnapshotError::Corrupt("loda: zero bins"));
            }
            let probs = snapshot::read_f64s(r, n_bins)?;
            snapshot::check_finite(&probs, "loda: non-finite bin probability")?;
            cuts.push(Cut { weights, lo, width, probs });
        }
        let n_bins = cuts[0].probs.len();
        Ok(Self { n_random_cuts: cuts.len(), n_bins, seed: 0, cuts, n_features })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.37).sin(), (t * 0.53).cos(), (t * 0.11).sin()]
            })
            .collect();
        rows.push(vec![12.0, -12.0, 12.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let x = cloud_with_outlier();
        let s = Loda::with_seed(5).fit_score(&x).unwrap();
        let max_idx = s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 80);
    }

    #[test]
    fn out_of_range_projection_gets_floor_probability() {
        let x = Matrix::from_vec(20, 1, (0..20).map(|i| i as f64 * 0.1).collect()).unwrap();
        let mut l = Loda::with_seed(0);
        l.fit(&x).unwrap();
        let q = Matrix::from_vec(1, 1, vec![1e6]).unwrap();
        let s = l.score(&q).unwrap();
        // Mean of -ln(EPS) across cuts.
        assert!((s[0] - (-(EPS).ln())).abs() < 1e-9, "got {}", s[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = cloud_with_outlier();
        let a = Loda::with_seed(1).fit_score(&x).unwrap();
        let b = Loda::with_seed(1).fit_score(&x).unwrap();
        assert_eq!(a, b);
        let c = Loda::with_seed(2).fit_score(&x).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_projection_uses_sqrt_d_features() {
        let x = Matrix::filled(5, 9, 1.0);
        let mut l = Loda::with_seed(0);
        l.fit(&x).unwrap();
        assert!(l.cuts.iter().all(|c| c.weights.len() == 3));
    }

    #[test]
    fn guards() {
        let l = Loda::default();
        assert_eq!(l.score(&Matrix::zeros(1, 1)), Err(DetectorError::NotFitted));
        let mut l = Loda::default();
        assert_eq!(l.fit(&Matrix::zeros(0, 1)), Err(DetectorError::EmptyInput));
    }
}
