//! Isolation Forest (Liu, Ting & Zhou 2008).
//!
//! PyOD defaults: 100 trees, subsample size ψ = min(256, n), height limit
//! ⌈log₂ ψ⌉. Anomaly score `s(x) = 2^(−E[h(x)] / c(ψ))` where `c(·)` is
//! the expected path length of an unsuccessful BST search; PyOD reports
//! this directly (higher = more anomalous).

use crate::traits::{Detector, DetectorError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use uadb_linalg::Matrix;

/// One node of an isolation tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    External {
        /// Number of training points that fell into this leaf.
        size: usize,
    },
}

/// A single isolation tree over a subsample.
#[derive(Debug, Clone)]
struct ITree {
    nodes: Vec<Node>,
}

impl ITree {
    /// Builds a tree over the rows of `x` listed in `idx`.
    fn build(x: &Matrix, idx: &mut [usize], height_limit: usize, rng: &mut StdRng) -> Self {
        let mut nodes = Vec::with_capacity(2 * idx.len());
        Self::build_rec(x, idx, 0, height_limit, rng, &mut nodes);
        Self { nodes }
    }

    fn build_rec(
        x: &Matrix,
        idx: &mut [usize],
        depth: usize,
        limit: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<Node>,
    ) -> usize {
        if depth >= limit || idx.len() <= 1 {
            nodes.push(Node::External { size: idx.len() });
            return nodes.len() - 1;
        }
        // Pick a random feature with spread; give up after d tries.
        let d = x.cols();
        let mut feature = rng.gen_range(0..d);
        let (mut lo, mut hi) = feature_range(x, idx, feature);
        let mut tries = 0;
        while hi <= lo && tries < d {
            feature = (feature + 1) % d;
            let r = feature_range(x, idx, feature);
            lo = r.0;
            hi = r.1;
            tries += 1;
        }
        if hi <= lo {
            // All remaining points identical: isolation is impossible.
            nodes.push(Node::External { size: idx.len() });
            return nodes.len() - 1;
        }
        let threshold = rng.gen_range(lo..hi);
        // Partition in place.
        let mut split = 0;
        for i in 0..idx.len() {
            if x.get(idx[i], feature) < threshold {
                idx.swap(i, split);
                split += 1;
            }
        }
        // A random threshold strictly inside (lo, hi) guarantees both
        // sides are non-empty, but guard against float pathology anyway.
        if split == 0 || split == idx.len() {
            nodes.push(Node::External { size: idx.len() });
            return nodes.len() - 1;
        }
        let placeholder = nodes.len();
        nodes.push(Node::External { size: 0 }); // patched below
        let (left_idx, right_idx) = idx.split_at_mut(split);
        let left = Self::build_rec(x, left_idx, depth + 1, limit, rng, nodes);
        let right = Self::build_rec(x, right_idx, depth + 1, limit, rng, nodes);
        nodes[placeholder] = Node::Internal { feature, threshold, left, right };
        placeholder
    }

    /// Path length of a query, including the `c(size)` adjustment at the
    /// reached leaf.
    fn path_length(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        let mut depth = 0.0;
        loop {
            match &self.nodes[node] {
                Node::External { size } => return depth + c_factor(*size),
                Node::Internal { feature, threshold, left, right } => {
                    node = if row[*feature] < *threshold { *left } else { *right };
                    depth += 1.0;
                }
            }
        }
    }
}

fn feature_range(x: &Matrix, idx: &[usize], feature: usize) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &i in idx {
        let v = x.get(i, feature);
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    (lo, hi)
}

/// Expected path length of an unsuccessful BST search over `n` points:
/// `c(n) = 2 H(n−1) − 2(n−1)/n`, with `c(0) = c(1) = 0`.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    2.0 * (harmonic(nf - 1.0)) - 2.0 * (nf - 1.0) / nf
}

/// Harmonic number approximation `H(i) ≈ ln(i) + γ`.
fn harmonic(i: f64) -> f64 {
    const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
    i.ln() + EULER_MASCHERONI
}

/// The Isolation Forest detector.
pub struct IForest {
    /// Number of trees (PyOD default 100).
    pub n_estimators: usize,
    /// Maximum subsample per tree (PyOD default 256).
    pub max_samples: usize,
    seed: u64,
    trees: Vec<ITree>,
    c_psi: f64,
    n_features: usize,
}

impl IForest {
    /// PyOD defaults with an explicit RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            n_estimators: 100,
            max_samples: 256,
            seed,
            trees: Vec::new(),
            c_psi: 0.0,
            n_features: 0,
        }
    }
}

impl Default for IForest {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Detector for IForest {
    fn name(&self) -> &'static str {
        "IForest"
    }

    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError> {
        let (n, d) = x.shape();
        if n == 0 || d == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let psi = self.max_samples.min(n);
        let height_limit = (psi as f64).log2().ceil().max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut all: Vec<usize> = (0..n).collect();
        self.trees = (0..self.n_estimators)
            .map(|_| {
                all.shuffle(&mut rng);
                let mut sample: Vec<usize> = all[..psi].to_vec();
                ITree::build(x, &mut sample, height_limit, &mut rng)
            })
            .collect();
        self.c_psi = c_factor(psi);
        self.n_features = d;
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        if self.trees.is_empty() {
            return Err(DetectorError::NotFitted);
        }
        if x.cols() != self.n_features {
            return Err(DetectorError::DimensionMismatch {
                expected: self.n_features,
                got: x.cols(),
            });
        }
        let inv = 1.0 / self.trees.len() as f64;
        Ok(x.row_iter()
            .map(|row| {
                let mean_path: f64 =
                    self.trees.iter().map(|t| t.path_length(row)).sum::<f64>() * inv;
                2f64.powf(-mean_path / self.c_psi.max(1e-12))
            })
            .collect())
    }
}

// ------------------------------ snapshot ------------------------------

use crate::snapshot::{self, DetectorSnapshot, SnapshotError};
use crate::traits::DetectorKind;
use std::io::{Read, Write};

impl DetectorSnapshot for IForest {
    fn kind(&self) -> DetectorKind {
        DetectorKind::IForest
    }

    fn fitted_dim(&self) -> usize {
        self.n_features
    }

    fn write_fitted(&self, w: &mut dyn Write) -> Result<(), SnapshotError> {
        if self.trees.is_empty() {
            return Err(SnapshotError::InvalidState("iforest: not fitted"));
        }
        if !self.c_psi.is_finite() {
            return Err(SnapshotError::InvalidState("iforest: non-finite c(psi)"));
        }
        for tree in &self.trees {
            for node in &tree.nodes {
                if let Node::Internal { threshold, .. } = node {
                    if !threshold.is_finite() {
                        return Err(SnapshotError::InvalidState(
                            "iforest: non-finite split threshold",
                        ));
                    }
                }
            }
        }
        snapshot::write_u64(w, self.n_features as u64)?;
        snapshot::write_f64(w, self.c_psi)?;
        snapshot::write_u64(w, self.trees.len() as u64)?;
        for tree in &self.trees {
            snapshot::write_u64(w, tree.nodes.len() as u64)?;
            for node in &tree.nodes {
                match node {
                    Node::External { size } => {
                        snapshot::write_u8(w, 0)?;
                        snapshot::write_u64(w, *size as u64)?;
                    }
                    Node::Internal { feature, threshold, left, right } => {
                        snapshot::write_u8(w, 1)?;
                        snapshot::write_u64(w, *feature as u64)?;
                        snapshot::write_f64(w, *threshold)?;
                        snapshot::write_u64(w, *left as u64)?;
                        snapshot::write_u64(w, *right as u64)?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl IForest {
    /// Restores the fitted forest written by
    /// [`DetectorSnapshot::write_fitted`]. Config fields that scoring
    /// never touches (`max_samples`, the RNG seed) come back as
    /// defaults; the trees, `c(ψ)` and feature count are exact.
    pub(crate) fn read_fitted(r: &mut dyn Read) -> Result<Self, SnapshotError> {
        let n_features = snapshot::read_len(r, snapshot::MAX_DIM, "iforest feature count")?;
        if n_features == 0 {
            return Err(SnapshotError::Corrupt("iforest: zero features"));
        }
        let c_psi = snapshot::read_f64(r)?;
        if !c_psi.is_finite() {
            return Err(SnapshotError::Corrupt("iforest: non-finite c(psi)"));
        }
        let n_trees = snapshot::read_len(r, 1 << 20, "iforest tree count")?;
        if n_trees == 0 {
            return Err(SnapshotError::Corrupt("iforest: empty forest"));
        }
        let mut trees = Vec::with_capacity(n_trees.min(1024));
        for _ in 0..n_trees {
            let n_nodes = snapshot::read_len(r, snapshot::MAX_LEN, "iforest node count")?;
            if n_nodes == 0 {
                return Err(SnapshotError::Corrupt("iforest: empty tree"));
            }
            let mut nodes = Vec::with_capacity(n_nodes.min(8192));
            for i in 0..n_nodes {
                match snapshot::read_u8(r)? {
                    0 => {
                        let size = snapshot::read_len(r, snapshot::MAX_LEN, "iforest leaf size")?;
                        nodes.push(Node::External { size });
                    }
                    1 => {
                        let feature =
                            snapshot::read_len(r, snapshot::MAX_DIM, "iforest split feature")?;
                        let threshold = snapshot::read_f64(r)?;
                        let left = snapshot::read_len(r, snapshot::MAX_LEN, "iforest child")?;
                        let right = snapshot::read_len(r, snapshot::MAX_LEN, "iforest child")?;
                        // Scoring indexes query rows by `feature` and walks
                        // to the children: bounds-check both, and require
                        // strictly forward child pointers (the builder's
                        // arena is laid out that way) so a corrupt file can
                        // neither panic nor loop forever.
                        if feature >= n_features {
                            return Err(SnapshotError::Corrupt(
                                "iforest: split feature out of range",
                            ));
                        }
                        if !threshold.is_finite() {
                            return Err(SnapshotError::Corrupt(
                                "iforest: non-finite split threshold",
                            ));
                        }
                        if left >= n_nodes || right >= n_nodes || left <= i || right <= i {
                            return Err(SnapshotError::Corrupt(
                                "iforest: child pointer not forward",
                            ));
                        }
                        nodes.push(Node::Internal { feature, threshold, left, right });
                    }
                    _ => return Err(SnapshotError::Corrupt("iforest: unknown node tag")),
                }
            }
            trees.push(ITree { nodes });
        }
        let defaults = IForest::default();
        Ok(Self {
            n_estimators: trees.len(),
            max_samples: defaults.max_samples,
            seed: defaults.seed,
            trees,
            c_psi,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec![t.sin() * 0.5, t.cos() * 0.5]
            })
            .collect();
        rows.push(vec![8.0, 8.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let x = blob_with_outlier();
        let mut f = IForest::with_seed(7);
        let scores = f.fit_score(&x).unwrap();
        let max_idx =
            scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 60, "the far point must get the top score");
        // Scores live in (0, 1).
        assert!(scores.iter().all(|&s| s > 0.0 && s < 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blob_with_outlier();
        let a = IForest::with_seed(3).fit_score(&x).unwrap();
        let b = IForest::with_seed(3).fit_score(&x).unwrap();
        assert_eq!(a, b);
        let c = IForest::with_seed(4).fit_score(&x).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn c_factor_reference_values() {
        assert_eq!(c_factor(0), 0.0);
        assert_eq!(c_factor(1), 0.0);
        // c(2) = 2 H(1) - 1 = 2*gamma - 1 + ... H(1)=ln(1)+gamma = gamma
        let expect = 2.0 * 0.5772156649015329 - 1.0;
        assert!((c_factor(2) - expect).abs() < 1e-9);
        assert!(c_factor(256) > c_factor(128));
    }

    #[test]
    fn rejects_unfitted_and_mismatched() {
        let f = IForest::default();
        assert_eq!(f.score(&Matrix::zeros(1, 2)), Err(DetectorError::NotFitted));
        let mut f = IForest::default();
        f.fit(&blob_with_outlier()).unwrap();
        assert!(matches!(
            f.score(&Matrix::zeros(1, 5)),
            Err(DetectorError::DimensionMismatch { .. })
        ));
        let mut f = IForest::default();
        assert_eq!(f.fit(&Matrix::zeros(0, 2)), Err(DetectorError::EmptyInput));
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let x = Matrix::filled(20, 3, 1.0);
        let mut f = IForest::with_seed(0);
        let scores = f.fit_score(&x).unwrap();
        // All points identical: all scores equal, no NaN.
        assert!(scores.iter().all(|s| s.is_finite()));
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-12));
    }
}
