//! The model-agnostic detector interface and the factory over all 14
//! models.

use std::fmt;
use uadb_linalg::{LinalgError, Matrix};

/// Errors a detector can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorError {
    /// `score` was called before `fit`.
    NotFitted,
    /// The training matrix had no rows or no columns.
    EmptyInput,
    /// Query dimensionality differs from the fitted dimensionality.
    DimensionMismatch {
        /// Dimensionality seen at fit time.
        expected: usize,
        /// Dimensionality of the query.
        got: usize,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
    /// An iterative solver failed to converge (carried as a warning-level
    /// error; detectors generally fall back before surfacing this).
    NoConvergence(&'static str),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::NotFitted => write!(f, "detector used before fit()"),
            DetectorError::EmptyInput => write!(f, "training data is empty"),
            DetectorError::DimensionMismatch { expected, got } => {
                write!(f, "query has {got} features, model was fitted with {expected}")
            }
            DetectorError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            DetectorError::NoConvergence(which) => write!(f, "{which} failed to converge"),
        }
    }
}

impl std::error::Error for DetectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectorError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DetectorError {
    fn from(e: LinalgError) -> Self {
        DetectorError::Linalg(e)
    }
}

/// An unsupervised anomaly detector: fit on unlabelled data, score any
/// points (higher = more anomalous). Raw decision scores are on each
/// model's native scale; the UADB pipeline min-max normalises them into
/// `[0,1]` pseudo labels exactly as the paper does.
pub trait Detector: Send {
    /// Display name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Learns the model from unlabelled rows of `x`.
    fn fit(&mut self, x: &Matrix) -> Result<(), DetectorError>;

    /// Anomaly scores for the rows of `x` (requires a prior [`fit`]).
    ///
    /// [`fit`]: Detector::fit
    fn score(&self, x: &Matrix) -> Result<Vec<f64>, DetectorError>;

    /// Convenience: fit on `x`, then score the same rows (PyOD's
    /// `fit` + `decision_scores_`).
    fn fit_score(&mut self, x: &Matrix) -> Result<Vec<f64>, DetectorError> {
        self.fit(x)?;
        self.score(x)
    }
}

/// Enumeration of the 14 source UAD models, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Isolation Forest (Liu et al. 2008).
    IForest,
    /// Histogram-based outlier score (Goldstein & Dengel 2012).
    Hbos,
    /// Local outlier factor (Breunig et al. 2000).
    Lof,
    /// k-nearest-neighbour distance (Ramaswamy et al. 2000).
    Knn,
    /// Principal-component classifier (Shyu et al. 2003).
    Pca,
    /// One-class SVM (Schölkopf et al. 1999).
    Ocsvm,
    /// Cluster-based LOF (He et al. 2003).
    Cblof,
    /// Connectivity-based outlier factor (Tang et al. 2002).
    Cof,
    /// Subspace outlier detection (Kriegel et al. 2009).
    Sod,
    /// Empirical-CDF outlier detection (Li et al. 2022).
    Ecod,
    /// Gaussian mixture model log-likelihood.
    Gmm,
    /// Lightweight on-line detector of anomalies (Pevný 2016).
    Loda,
    /// Copula-based outlier detection (Li et al. 2020).
    Copod,
    /// Deep support vector data description (Ruff et al. 2018).
    DeepSvdd,
}

impl DetectorKind {
    /// All 14 kinds in the column order of Tables IV and VI.
    pub const ALL: [DetectorKind; 14] = [
        DetectorKind::IForest,
        DetectorKind::Hbos,
        DetectorKind::Lof,
        DetectorKind::Knn,
        DetectorKind::Pca,
        DetectorKind::Ocsvm,
        DetectorKind::Cblof,
        DetectorKind::Cof,
        DetectorKind::Sod,
        DetectorKind::Ecod,
        DetectorKind::Gmm,
        DetectorKind::Loda,
        DetectorKind::Copod,
        DetectorKind::DeepSvdd,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::IForest => "IForest",
            DetectorKind::Hbos => "HBOS",
            DetectorKind::Lof => "LOF",
            DetectorKind::Knn => "KNN",
            DetectorKind::Pca => "PCA",
            DetectorKind::Ocsvm => "OCSVM",
            DetectorKind::Cblof => "CBLOF",
            DetectorKind::Cof => "COF",
            DetectorKind::Sod => "SOD",
            DetectorKind::Ecod => "ECOD",
            DetectorKind::Gmm => "GMM",
            DetectorKind::Loda => "LODA",
            DetectorKind::Copod => "COPOD",
            DetectorKind::DeepSvdd => "DeepSVDD",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Instantiates the detector with PyOD default hyper-parameters.
    /// `seed` feeds the stochastic models (IForest, CBLOF, LODA,
    /// DeepSVDD); deterministic models ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Detector> {
        match self {
            DetectorKind::IForest => Box::new(crate::iforest::IForest::with_seed(seed)),
            DetectorKind::Hbos => Box::new(crate::hbos::Hbos::default()),
            DetectorKind::Lof => Box::new(crate::lof::Lof::default()),
            DetectorKind::Knn => Box::new(crate::knn::Knn::default()),
            DetectorKind::Pca => Box::new(crate::pca::Pca::default()),
            DetectorKind::Ocsvm => Box::new(crate::ocsvm::OcSvm::default()),
            DetectorKind::Cblof => Box::new(crate::cblof::Cblof::with_seed(seed)),
            DetectorKind::Cof => Box::new(crate::cof::Cof::default()),
            DetectorKind::Sod => Box::new(crate::sod::Sod::default()),
            DetectorKind::Ecod => Box::new(crate::ecod::Ecod::default()),
            DetectorKind::Gmm => Box::new(crate::gmm::Gmm::with_seed(seed)),
            DetectorKind::Loda => Box::new(crate::loda::Loda::with_seed(seed)),
            DetectorKind::Copod => Box::new(crate::copod::Copod::default()),
            DetectorKind::DeepSvdd => Box::new(crate::deep_svdd::DeepSvdd::with_seed(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<&str> = DetectorKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn from_name_roundtrip() {
        for k in DetectorKind::ALL {
            assert_eq!(DetectorKind::from_name(k.name()), Some(k));
            assert_eq!(DetectorKind::from_name(&k.name().to_lowercase()), Some(k));
        }
        assert_eq!(DetectorKind::from_name("nope"), None);
    }

    #[test]
    fn error_display() {
        let e = DetectorError::DimensionMismatch { expected: 3, got: 5 };
        assert!(e.to_string().contains('3'));
        assert!(DetectorError::NotFitted.to_string().contains("fit"));
        let le: DetectorError = LinalgError::Singular { op: "x" }.into();
        assert!(le.to_string().contains("singular"));
    }
}
