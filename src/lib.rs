//! Umbrella crate for the UADB reproduction: re-exports every workspace
//! crate under one roof so the examples and integration tests read like
//! downstream user code.
//!
//! * [`uadb`] — the booster framework (the paper's contribution),
//! * [`uadb_serve`] — model persistence + the batch-scoring HTTP server,
//! * [`uadb_detectors`] — the 14 source UAD models,
//! * [`uadb_data`] — datasets and generators,
//! * [`uadb_nn`] — the MLP/Adam substrate,
//! * [`uadb_metrics`] / [`uadb_stats`] — evaluation machinery,
//! * [`uadb_linalg`] — dense linear algebra.
//!
//! ## Quickstart: boost a detector
//!
//! ```
//! use uadb::{Uadb, UadbConfig};
//! use uadb_data::synth::{fig5_dataset, AnomalyType};
//! use uadb_detectors::DetectorKind;
//!
//! let data = fig5_dataset(AnomalyType::Clustered, 7).standardized();
//! let teacher = DetectorKind::IForest.build(0).fit_score(&data.x).unwrap();
//! let model = Uadb::new(UadbConfig::fast_for_tests(0)).fit(&data.x, &teacher).unwrap();
//! assert_eq!(model.scores().len(), data.n_samples());
//! ```
//!
//! ## Quickstart: deploy it
//!
//! Training feeds [`uadb_serve::ServedModel`], which bundles the fitted
//! ensemble with the train-time standardisation and score calibration;
//! `save`/`load` round-trip it through a versioned binary format and
//! [`uadb_serve::Server`] exposes `POST /score` over HTTP:
//!
//! ```
//! use uadb::UadbConfig;
//! use uadb_data::synth::{fig5_dataset, AnomalyType};
//! use uadb_detectors::DetectorKind;
//! use uadb_serve::ServedModel;
//!
//! let data = fig5_dataset(AnomalyType::Clustered, 7);
//! let served = ServedModel::train(
//!     &data,
//!     DetectorKind::IForest,
//!     UadbConfig::fast_for_tests(0),
//! )
//! .unwrap();
//! let mut file = Vec::new();
//! uadb_serve::save(&served, &mut file).unwrap();
//! let loaded = uadb_serve::load(&file[..]).unwrap();
//! assert_eq!(
//!     loaded.score_rows(&data.x).unwrap(),
//!     served.score_rows(&data.x).unwrap()
//! );
//! ```
//!
//! The same loop is available from the shell via the `uadb-serve`
//! binary (`train`, `score`, `serve`, `info` subcommands); see
//! `examples/serve_and_score.rs` and `examples/quickstart.rs`.

pub use uadb;
pub use uadb_data;
pub use uadb_detectors;
pub use uadb_linalg;
pub use uadb_metrics;
pub use uadb_nn;
pub use uadb_serve;
pub use uadb_stats;
