//! Umbrella crate for the UADB reproduction: re-exports every workspace
//! crate under one roof so the examples and integration tests read like
//! downstream user code.
//!
//! * [`uadb`] — the booster framework (the paper's contribution),
//! * [`uadb_detectors`] — the 14 source UAD models,
//! * [`uadb_data`] — datasets and generators,
//! * [`uadb_nn`] — the MLP/Adam substrate,
//! * [`uadb_metrics`] / [`uadb_stats`] — evaluation machinery,
//! * [`uadb_linalg`] — dense linear algebra.
//!
//! Start with `examples/quickstart.rs`.

pub use uadb;
pub use uadb_data;
pub use uadb_detectors;
pub use uadb_linalg;
pub use uadb_metrics;
pub use uadb_nn;
pub use uadb_stats;
