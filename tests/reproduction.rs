//! Reproduction-shape tests: scaled-down versions of the paper's
//! headline claims that must hold for the repository to count as a
//! faithful reproduction (EXPERIMENTS.md records the full-size runs).

use uadb::experiment::{run_pair_schemes, ExperimentConfig};
use uadb::variance_probe::probe;
use uadb::{BoosterScheme, Uadb, UadbConfig};
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::{count_errors, error_correction_rate, roc_auc, threshold_by_contamination};

/// Paper-default booster, but narrower/shorter so debug-mode tests stay
/// fast while keeping the iterative mechanics intact.
fn repro_cfg(seed: u64) -> UadbConfig {
    UadbConfig { t_steps: 6, epochs_per_step: 8, hidden: vec![64], ..UadbConfig::with_seed(seed) }
}

#[test]
fn variance_evidence_holds_on_majority_of_sample() {
    // Fig. 2's claim (71/84 datasets) on a 6-dataset sample: anomalies
    // must carry higher teacher/student variance on most of them.
    let names = ["12_glass", "25_musk", "39_thyroid", "6_cardio", "26_optdigits", "15_http"];
    let cfg = UadbConfig { t_steps: 1, epochs_per_step: 30, ..repro_cfg(0) };
    let mut holds = 0;
    for name in names {
        let d = generate_by_name(name, SuiteScale::Quick, 0).unwrap().standardized();
        let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
        let ev = probe(&d, &teacher, &cfg).unwrap();
        if ev.anomalies_have_higher_variance() {
            holds += 1;
        }
    }
    assert!(holds >= 4, "variance evidence held on only {holds}/6 datasets");
}

#[test]
fn uadb_corrects_clustered_anomaly_errors() {
    // Fig. 5 row 1: IForest mislabels clustered anomalies; the booster
    // corrects a substantial share of its thresholded errors.
    let d = fig5_dataset(AnomalyType::Clustered, 17).standardized();
    let labels = d.labels_f64();
    let contamination = d.n_anomalies() as f64 / d.n_samples() as f64;
    let teacher = DetectorKind::IForest.build(3).fit_score(&d.x).unwrap();
    let thr = threshold_by_contamination(&teacher, contamination);
    let teacher_errors = count_errors(&labels, &teacher, thr).errors();
    let model = Uadb::new(repro_cfg(3)).fit(&d.x, &teacher).unwrap();
    let boosted = model.scores();
    let thr_b = threshold_by_contamination(boosted, contamination);
    let booster_errors = count_errors(&labels, boosted, thr_b).errors();
    let rate = error_correction_rate(teacher_errors, booster_errors);
    assert!(
        booster_errors <= teacher_errors,
        "booster made more errors ({booster_errors}) than the teacher ({teacher_errors})"
    );
    assert!(rate >= 0.0);
}

#[test]
fn uadb_beats_discrepancy_and_self_schemes_on_average() {
    // Table VI ordering: UADB is the best scheme; Discrepancy* trails.
    let datasets = [
        fig5_dataset(AnomalyType::Global, 21),
        fig5_dataset(AnomalyType::Clustered, 22),
        fig5_dataset(AnomalyType::Local, 23),
    ];
    let cfg = ExperimentConfig { booster: repro_cfg(1), n_runs: 1, n_threads: 2 };
    let mut totals: std::collections::HashMap<&str, f64> = Default::default();
    for d in &datasets {
        for r in run_pair_schemes(DetectorKind::IForest, d, &BoosterScheme::ALL, &cfg) {
            *totals.entry(r.scheme).or_default() += r.auc;
        }
    }
    let uadb = totals["UADB"];
    assert!(
        uadb > totals["Discrepancy Booster*"],
        "UADB ({uadb:.3}) must beat Discrepancy* ({:.3})",
        totals["Discrepancy Booster*"]
    );
    assert!(
        uadb > totals["Self Booster"] - 0.05,
        "UADB ({uadb:.3}) must not trail Self Booster ({:.3})",
        totals["Self Booster"]
    );
}

#[test]
fn booster_tracks_strong_teachers() {
    // Knowledge transfer: on datasets where the teacher is already
    // excellent, the booster must stay close (Table IV: improvements are
    // small but the booster never collapses).
    let d = generate_by_name("26_optdigits", SuiteScale::Quick, 0).unwrap().standardized();
    let labels = d.labels_f64();
    let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
    let teacher_auc = roc_auc(&labels, &teacher);
    let model = Uadb::new(repro_cfg(0)).fit(&d.x, &teacher).unwrap();
    let booster_auc = roc_auc(&labels, model.scores());
    assert!(teacher_auc > 0.9, "teacher should be strong here: {teacher_auc:.3}");
    assert!(
        booster_auc > teacher_auc - 0.08,
        "booster {booster_auc:.3} collapsed vs teacher {teacher_auc:.3}"
    );
}

#[test]
fn iteration_history_feeds_tables() {
    // Table V consumes per-iteration metrics; the history must be
    // monotone in length and bounded.
    let d = fig5_dataset(AnomalyType::Dependency, 9).standardized();
    let teacher = DetectorKind::Ecod.build(0).fit_score(&d.x).unwrap();
    let cfg = repro_cfg(2);
    let t = cfg.t_steps;
    let model = Uadb::new(cfg).fit(&d.x, &teacher).unwrap();
    assert_eq!(model.booster_history().len(), t);
    assert_eq!(model.pseudo_history().len(), t + 1);
    let labels = d.labels_f64();
    for fb in model.booster_history() {
        let auc = roc_auc(&labels, fb);
        assert!((0.0..=1.0).contains(&auc));
    }
}

#[test]
fn no_universal_winner_and_uadb_narrows_the_field() {
    // The paper's motivation (§I): the best teacher differs per anomaly
    // type. UADB must preserve each winner's lead (not flatten everyone).
    let mut winners = Vec::new();
    for (ty, seed) in [(AnomalyType::Clustered, 31u64), (AnomalyType::Local, 32u64)] {
        let d = fig5_dataset(ty, seed).standardized();
        let labels = d.labels_f64();
        let mut best = ("", f64::NEG_INFINITY);
        for kind in [DetectorKind::Hbos, DetectorKind::Lof, DetectorKind::Pca] {
            let teacher = kind.build(0).fit_score(&d.x).unwrap();
            let model = Uadb::new(repro_cfg(5)).fit(&d.x, &teacher).unwrap();
            let auc = roc_auc(&labels, model.scores());
            if auc > best.1 {
                best = (kind.name(), auc);
            }
        }
        winners.push(best);
    }
    // Both boosted winners must be decent detectors.
    for (name, auc) in &winners {
        assert!(*auc > 0.5, "boosted winner {name} below chance: {auc:.3}");
    }
}
