//! End-to-end pipeline tests spanning every workspace crate: data
//! generation -> detector -> booster -> metrics.

use uadb::experiment::{run_matrix, run_pair, ExperimentConfig};
use uadb::{Uadb, UadbConfig};
use uadb_data::suite::{generate_by_name, SuiteScale, QUICK_SUBSET};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::{average_precision, roc_auc};

fn fast_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig { booster: UadbConfig::fast_for_tests(seed), n_runs: 1, n_threads: 2 }
}

#[test]
fn full_pipeline_on_suite_dataset() {
    let data = generate_by_name("39_thyroid", SuiteScale::Quick, 3).unwrap();
    let r = run_pair(DetectorKind::Hbos, &data, &fast_cfg(0));
    assert!(r.teacher_auc > 0.0 && r.teacher_auc <= 1.0);
    assert!(r.booster_auc > 0.0 && r.booster_auc <= 1.0);
    assert!(r.teacher_ap > 0.0 && r.teacher_ap <= 1.0);
    assert_eq!(r.iter_auc.len(), fast_cfg(0).booster.t_steps);
}

#[test]
fn booster_scores_are_probabilities() {
    let data = fig5_dataset(AnomalyType::Global, 1).standardized();
    let teacher = DetectorKind::Knn.build(0).fit_score(&data.x).unwrap();
    let model = Uadb::new(UadbConfig::fast_for_tests(0)).fit(&data.x, &teacher).unwrap();
    assert!(model.scores().iter().all(|&s| (0.0..=1.0).contains(&s)));
    // Out-of-sample scoring keeps the contract.
    let holdout = data.x.select_rows(&(0..10).collect::<Vec<_>>());
    assert!(model.score(&holdout).iter().all(|&s| (0.0..=1.0).contains(&s)));
}

#[test]
fn experiment_matrix_is_thread_count_invariant() {
    let datasets =
        vec![fig5_dataset(AnomalyType::Global, 2), fig5_dataset(AnomalyType::Clustered, 3)];
    let kinds = [DetectorKind::Hbos, DetectorKind::Ecod];
    let mut cfg = fast_cfg(1);
    cfg.n_threads = 1;
    let a = run_matrix(&kinds, &datasets, &cfg);
    cfg.n_threads = 8;
    let b = run_matrix(&kinds, &datasets, &cfg);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.booster_auc, rb.booster_auc);
        assert_eq!(ra.dataset, rb.dataset);
    }
}

#[test]
fn quick_subset_runs_every_detector_family() {
    // One dataset, every detector: the whole zoo must hold the Detector
    // contract on realistic suite data.
    let data = generate_by_name(QUICK_SUBSET[0], SuiteScale::Quick, 0).unwrap().standardized();
    let labels = data.labels_f64();
    for kind in DetectorKind::ALL {
        let scores = kind.build(5).fit_score(&data.x).unwrap();
        let auc = roc_auc(&labels, &scores);
        let ap = average_precision(&labels, &scores);
        assert!((0.0..=1.0).contains(&auc), "{}", kind.name());
        assert!((0.0..=1.0).contains(&ap), "{}", kind.name());
    }
}

#[test]
fn seeded_runs_reproduce_exactly() {
    let data = generate_by_name("12_glass", SuiteScale::Quick, 9).unwrap();
    let a = run_pair(DetectorKind::IForest, &data, &fast_cfg(4));
    let b = run_pair(DetectorKind::IForest, &data, &fast_cfg(4));
    assert_eq!(a.booster_auc, b.booster_auc);
    assert_eq!(a.iter_auc, b.iter_auc);
}

#[test]
fn standardization_is_part_of_the_pipeline() {
    // run_pair standardises internally: feeding a wildly-scaled dataset
    // must still produce sane results.
    let mut data = fig5_dataset(AnomalyType::Global, 7);
    // Blow up one feature by 1e6.
    for r in 0..data.x.rows() {
        let v = data.x.get(r, 0) * 1e6;
        data.x.set(r, 0, v);
    }
    let r = run_pair(DetectorKind::Knn, &data, &fast_cfg(0));
    assert!(r.teacher_auc > 0.55, "KNN should survive rescaling, got {}", r.teacher_auc);
}
