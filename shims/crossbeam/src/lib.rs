//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so this shim is a
//! thin adapter giving `std::thread::scope` crossbeam's call shape
//! (`scope(|s| …)` returning `Result`, spawn closures receiving the
//! scope as an argument).

pub mod thread {
    //! Scoped thread spawning.

    use std::any::Any;

    /// Handle through which scoped threads are spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to the scope. The closure receives the
        /// scope so nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns.
    ///
    /// Divergence from crossbeam: a panicking child propagates the panic
    /// on join (std semantics) instead of surfacing it in the `Err`
    /// variant, so the `Ok` arm is always taken when this returns. The
    /// workspace immediately `expect`s the result, making the two
    /// behaviours equivalent here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 1);
        }
    }
}
