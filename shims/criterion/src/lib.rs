//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's bench targets use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`). Instead of
//! criterion's statistical machinery it runs each benchmark closure
//! `sample_size` times and reports min/mean wall-clock timings — enough
//! to compare hot-path changes locally while staying dependency-free.

use std::sync::Mutex;
use std::time::Instant;

/// One recorded benchmark outcome (shim extension; upstream criterion
/// exposes results through its own report files instead).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name, or an empty string for ungrouped benchmarks.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Fastest observed sample, nanoseconds.
    pub min_ns: f64,
    /// Mean over all samples, nanoseconds.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every result recorded since the last call (bench binaries
/// with a custom `main` use this to emit machine-readable summaries,
/// e.g. `BENCH_matmul.json`).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Benchmark driver handed to the functions named in
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _c: self, group: name.to_string(), sample_size: 10 }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", name.as_ref(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed repetitions per benchmark (criterion's minimum of
    /// 10 applies).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one closure.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.group, name.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot path.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times, recording wall-clock nanoseconds.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = f();
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
            black_box(out);
        }
    }
}

fn run_bench<F>(group: &str, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "  {name}: min {} / mean {} ({} samples)",
        format_ns(min),
        format_ns(mean),
        b.samples.len()
    );
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(BenchResult {
        group: group.to_string(),
        name: name.to_string(),
        min_ns: min,
        mean_ns: mean,
        samples: b.samples.len(),
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Identity function opaque to the optimiser, preventing dead-code
/// elimination of benchmark results.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function calling each named target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn group_runs_closures_and_records_results() {
        let mut c = super::Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
        let recorded = super::take_results();
        let r = recorded.iter().find(|r| r.group == "t" && r.name == "count").expect("recorded");
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.mean_ns);
        // Drained: a second take sees nothing from this run.
        assert!(super::take_results().iter().all(|r| !(r.group == "t" && r.name == "count")));
    }
}
