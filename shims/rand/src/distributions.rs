//! Distributions and uniform range sampling.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform `[0, 1)` for floats, fair coin
/// for `bool`, full-range uniform for unsigned integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

pub mod uniform {
    //! Range sampling used by [`Rng::gen_range`].

    use super::super::RngCore;
    use std::ops::Range;

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        /// If the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + u * (self.end - self.start);
            // Floating rounding can land exactly on `end` when the span
            // is tiny; clamp back inside the half-open interval.
            if v >= self.end {
                self.end - (self.end - self.start) * f64::EPSILON
            } else {
                v
            }
        }
    }

    impl SampleRange<f32> for Range<f32> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            let v = self.start + u * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// Uniform `u64` over `[0, span)` by rejection sampling (no modulo
    /// bias).
    #[inline]
    fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Largest multiple of `span` that fits in u64; draws at or above
        // it are rejected.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = uniform_u64_below(rng, span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);
}
