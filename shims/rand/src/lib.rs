//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides the (small) API subset the workspace actually uses with the
//! same module paths as `rand` 0.8: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`] and
//! [`distributions::Distribution`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic given a seed, with statistical quality
//! far beyond what the simulated datasets and shuffles require. Streams
//! differ from upstream `rand`, which no test in this workspace depends
//! on (they assert determinism and distributional properties, never
//! exact draws).

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform
    /// over their full range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_int_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5usize..5);
    }
}
