//! The `Strategy` trait and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates values of an associated type from a deterministic RNG.
pub trait Strategy {
    /// Value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value (e.g. a
    /// length, then a vector of that length).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as usize;
                (self.start as i128 + rng.usize_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
