//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`collection::vec`] and [`bool::ANY`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! index and message only), and a fixed deterministic case count per
//! test (overridable via `PROPTEST_CASES`). Each test function derives
//! its RNG stream from its own name, so cases are stable across runs and
//! machines.

use std::fmt;

pub mod strategy;
pub mod test_runner;

/// Number of cases each property runs (`PROPTEST_CASES` overrides; the
/// default keeps full-workspace test time reasonable while exercising
/// each property well beyond its boundary conditions). Under Miri every
/// basic block costs ~100× native, so the default drops to a handful of
/// cases — the interpreter is hunting UB, not statistical coverage.
pub fn cases() -> usize {
    let default = if cfg!(miri) { 4 } else { 64 };
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A failed property-case assertion (early-returned by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors with `size` elements (fixed count or sampled from a
    /// range) drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.max - self.size.min <= 1 {
                self.size.min
            } else {
                self.size.min + rng.usize_below(self.size.max - self.size.min)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module alias used inside property bodies.
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines deterministic randomized property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0..100i64, b in 0..100i64) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __uadb_prop_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let __uadb_prop_cases = $crate::cases();
                for __uadb_prop_case in 0..__uadb_prop_cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __uadb_prop_rng,
                        );
                    )*
                    let __uadb_prop_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __uadb_prop_result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __uadb_prop_case + 1,
                            __uadb_prop_cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the current case
/// with location info (and an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {{
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let __uadb_prop_ok: bool = $cond;
        if !__uadb_prop_ok {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{} at {}:{}",
                format_args!($($fmt)*),
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{} (left: `{:?}`, right: `{:?}`) at {}:{}",
                format_args!($($fmt)*),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64).prop_flat_map(|a| (0.0..1.0f64).prop_map(move |b| (a, b)))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -3.0..3.0f64, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_flat_map_compose((a, b) in pair(), flag in prop::bool::ANY) {
            prop_assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0.0..1.0f64) {
                    prop_assert!(x > 2.0, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("x was"), "message: {msg}");
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
