//! Deterministic RNG driving case generation.

/// SplitMix64-based generator; streams are derived from the property
/// function's name so every test has a stable, independent sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// If `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        let span = bound as u64;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % span) as usize;
            }
        }
    }
}
