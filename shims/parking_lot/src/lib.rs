//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (a poisoned std lock —
//! only possible after a panic in a critical section — aborts the caller
//! via `unwrap`, mirroring parking_lot's poison-free semantics closely
//! enough for this codebase).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// Reader-writer lock with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
