//! Train → save → load → serve: the full deployment loop of
//! `uadb-serve`.
//!
//! ```sh
//! cargo run --release --example serve_and_score
//! ```
//!
//! Trains a booster over an IForest teacher on synthetic clustered
//! anomalies, persists it to a temporary file, reloads it, boots the
//! HTTP scoring server on an ephemeral port, and queries it from four
//! concurrent client threads — then checks the served scores against
//! the in-process model bit for bit.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::roc_auc;
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{json, persist, Server};

fn main() {
    // 1. Train on raw features; the bundle captures the train-time
    //    standardisation and score calibration.
    let data = fig5_dataset(AnomalyType::Clustered, 11);
    let served = ServedModel::train(&data, DetectorKind::IForest, UadbConfig::with_seed(11))
        .expect("teacher fits");
    let scores = served.score_rows(&data.x).expect("self-scoring");
    println!(
        "trained on {} ({} rows); booster AUCROC {:.3}",
        data.name,
        data.n_samples(),
        roc_auc(&data.labels_f64(), &scores)
    );

    // 2. Persist and reload — bit-identical by construction.
    let path = std::env::temp_dir().join("uadb_serve_example.uadb");
    persist::save_file(&served, &path).expect("save");
    let loaded = persist::load_file(&path).expect("load");
    println!("round-tripped model through {}", path.display());

    // 3. Serve the loaded model on an ephemeral port.
    let server =
        Server::bind("127.0.0.1:0", Arc::new(loaded), PoolConfig { workers: 4, shard_rows: 64 })
            .expect("bind");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();
    println!("serving on http://{addr}");

    // 4. Four concurrent clients post disjoint slices of the data.
    let expected = Arc::new(scores);
    let chunk = data.n_samples() / 4;
    let threads: Vec<_> = (0..4)
        .map(|c| {
            let x = data.x.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let rows: Vec<usize> = (c * chunk..(c + 1) * chunk).collect();
                let body = json::to_string(&json::object([(
                    "rows",
                    json::Value::Array(
                        rows.iter().map(|&r| json::number_array(x.row(r))).collect(),
                    ),
                )]));
                let mut stream = TcpStream::connect(addr).expect("connect");
                let req = format!(
                    "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(req.as_bytes()).expect("send");
                let mut response = String::new();
                stream.read_to_string(&mut response).expect("receive");
                let payload = response.split_once("\r\n\r\n").expect("body").1;
                let got: Vec<f64> = json::parse(payload)
                    .expect("json")
                    .get("scores")
                    .expect("scores")
                    .as_array()
                    .expect("array")
                    .iter()
                    .map(|v| v.as_f64().expect("number"))
                    .collect();
                for (pos, &row) in rows.iter().enumerate() {
                    assert_eq!(
                        got[pos].to_bits(),
                        expected[row].to_bits(),
                        "row {row} differs between HTTP and in-process"
                    );
                }
                rows.len()
            })
        })
        .collect();
    let total: usize = threads.into_iter().map(|t| t.join().expect("client")).sum();
    println!("{total} rows scored over 4 concurrent connections, all bit-identical");

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}
