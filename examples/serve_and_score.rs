//! Train → save → load → serve: the full deployment loop of
//! `uadb-serve`, now with two models behind one port and a persistent
//! (keep-alive) client.
//!
//! ```sh
//! cargo run --release --example serve_and_score
//! ```
//!
//! Trains two boosters (IForest and HBOS teachers) on synthetic
//! anomalies, persists them, registers both in a [`ModelRegistry`],
//! boots the HTTP server on an ephemeral port, and drives both models
//! over a SINGLE keep-alive connection — checking the served scores
//! against the in-process models bit for bit, then hot-reloading one
//! entry while the connection stays open.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::roc_auc;
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{json, persist, ModelRegistry, Server, ServerConfig};

/// Minimal persistent HTTP/1.1 client: send a request, read one
/// `Content-Length`-framed response, keep the socket open.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes()).expect("send");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status line");
        let status: u16 =
            status_line.split_whitespace().nth(1).expect("status").parse().expect("numeric");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8"))
    }
}

fn train(teacher: DetectorKind, seed: u64) -> (ServedModel, uadb_data::Dataset) {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    let served =
        ServedModel::train(&data, teacher, UadbConfig::with_seed(seed)).expect("teacher fits");
    let scores = served.score_rows(&data.x).expect("self-scoring");
    println!(
        "trained {} booster on {} ({} rows); AUCROC {:.3}",
        teacher.name(),
        data.name,
        data.n_samples(),
        roc_auc(&data.labels_f64(), &scores)
    );
    (served, data)
}

fn scores_of(body: &str) -> Vec<f64> {
    json::parse(body)
        .expect("json")
        .get("scores")
        .expect("scores")
        .as_array()
        .expect("array")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect()
}

fn rows_body(x: &uadb_linalg::Matrix, rows: &[usize]) -> String {
    json::to_string(&json::object([(
        "rows",
        json::Value::Array(rows.iter().map(|&r| json::number_array(x.row(r))).collect()),
    )]))
}

fn main() {
    // 1. Train two boosters over different teachers; persist both.
    let (iforest, data) = train(DetectorKind::IForest, 11);
    let (hbos, _) = train(DetectorKind::Hbos, 12);
    let dir = std::env::temp_dir();
    let iforest_path = dir.join("uadb_example_iforest.uadb");
    let hbos_path = dir.join("uadb_example_hbos.uadb");
    persist::save_file(&iforest, &iforest_path).expect("save iforest");
    persist::save_file(&hbos, &hbos_path).expect("save hbos");

    // 2. Register both (loaded back from disk — bit-identical by
    //    construction) and serve them behind one port.
    let registry = Arc::new(ModelRegistry::new());
    let pool_cfg = PoolConfig { workers: 4, shard_rows: 64 };
    registry.insert_from_file("iforest", &iforest_path, pool_cfg.clone()).expect("register");
    registry.insert_from_file("hbos", &hbos_path, pool_cfg).expect("register");
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.spawn().expect("spawn server");
    println!("serving {:?} on http://{addr} (default: iforest)", registry.names());

    // 3. Drive BOTH models over one keep-alive connection, interleaved,
    //    and check every response against the in-process models.
    let expected_iforest = iforest.score_rows(&data.x).expect("reference");
    let expected_hbos = hbos.score_rows(&data.x).expect("reference");
    let mut client = Client::connect(addr);
    let chunk = data.n_samples() / 4;
    let mut checked = 0usize;
    for c in 0..4 {
        let rows: Vec<usize> = (c * chunk..(c + 1) * chunk).collect();
        let body = rows_body(&data.x, &rows);
        for (path, expected) in
            [("/score/iforest", &expected_iforest), ("/score/hbos", &expected_hbos)]
        {
            let (status, payload) = client.post(path, &body);
            assert_eq!(status, 200, "{path}: {payload}");
            let got = scores_of(&payload);
            for (pos, &row) in rows.iter().enumerate() {
                assert_eq!(
                    got[pos].to_bits(),
                    expected[row].to_bits(),
                    "{path} row {row} differs between HTTP and in-process"
                );
                checked += 1;
            }
        }
    }
    println!("{checked} scores over ONE keep-alive connection, all bit-identical");

    // 4. Hot reload: overwrite the hbos slot with the iforest model file
    //    while the connection stays open.
    let (status, _) = client.post(
        "/admin/reload/hbos",
        &format!(
            "{{\"path\": {}}}",
            json::to_string(&json::Value::String(iforest_path.display().to_string()))
        ),
    );
    assert_eq!(status, 200);
    let probe: Vec<usize> = (0..8).collect();
    let (status, payload) = client.post("/score/hbos", &rows_body(&data.x, &probe));
    assert_eq!(status, 200);
    let got = scores_of(&payload);
    for (pos, &row) in probe.iter().enumerate() {
        assert_eq!(got[pos].to_bits(), expected_iforest[row].to_bits(), "post-reload row {row}");
    }
    println!(
        "hot reload swapped /score/hbos to the iforest weights without dropping the connection"
    );

    handle.shutdown();
    let _ = std::fs::remove_file(&iforest_path);
    let _ = std::fs::remove_file(&hbos_path);
}
