//! Quickstart: boost an Isolation Forest with UADB in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uadb::{Uadb, UadbConfig};
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_detectors::DetectorKind;
use uadb_metrics::{average_precision, roc_auc};

fn main() {
    // 1. A tabular anomaly-detection dataset (simulated stand-in for the
    //    ADBench `cardio` data; labels are for evaluation only).
    let data =
        generate_by_name("6_cardio", SuiteScale::Quick, 0).expect("roster dataset").standardized();
    println!(
        "dataset {}: {} samples x {} features, {:.1}% anomalies",
        data.name,
        data.n_samples(),
        data.n_features(),
        data.anomaly_pct()
    );

    // 2. Fit any unsupervised detector — no labels involved.
    let mut teacher = DetectorKind::IForest.build(0);
    let teacher_scores = teacher.fit_score(&data.x).expect("teacher fits");

    // 3. Boost it: iterative distillation with variance-based error
    //    correction (paper defaults: T=10, 3-fold MLP ensemble).
    let booster =
        Uadb::new(UadbConfig::with_seed(0)).fit(&data.x, &teacher_scores).expect("booster fits");

    // 4. The booster replaces the teacher as the final model.
    let labels = data.labels_f64();
    println!(
        "teacher  AUCROC {:.4}  AP {:.4}",
        roc_auc(&labels, &teacher_scores),
        average_precision(&labels, &teacher_scores)
    );
    println!(
        "UADB     AUCROC {:.4}  AP {:.4}",
        roc_auc(&labels, booster.scores()),
        average_precision(&labels, booster.scores())
    );

    // 5. Score unseen points with the fitted booster ensemble.
    let fresh = data.x.select_rows(&[0, 1, 2]);
    println!("scores for three points: {:?}", booster.score(&fresh));
}
