//! Fraud-detection scenario: a heavily imbalanced finance-style workload
//! (≈2% fraud, heterogeneous feature scales) where no single detector
//! assumption is safe — the situation §I of the paper motivates.
//!
//! We screen four detectors with different assumption families, boost
//! each with UADB, and report the precision of the top-50 alert budget —
//! the quantity a fraud-operations team actually consumes.

use uadb::{Uadb, UadbConfig};
use uadb_data::synth::{generate, AnomalyType, SynthConfig};
use uadb_detectors::DetectorKind;
use uadb_metrics::{average_precision, roc_auc};

/// Precision within the `k` highest-scored transactions.
fn precision_at_k(labels: &[f64], scores: &[f64], k: usize) -> f64 {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let hits: f64 = idx.iter().take(k).map(|&i| labels[i]).sum();
    hits / k as f64
}

fn main() {
    // Card-transaction-like table: mostly legitimate activity in a few
    // behavioural clusters; fraud is a mix of "unusual amounts" (global),
    // "slightly-off behaviour" (local) and an organised fraud ring
    // (clustered).
    let cfg = SynthConfig {
        n_inliers: 1960,
        n_anomalies: 40,
        dim: 16,
        n_clusters: 3,
        anomaly_mix: vec![
            (AnomalyType::Global, 0.4),
            (AnomalyType::Local, 0.3),
            (AnomalyType::Clustered, 0.3),
        ],
        local_alpha: 4.0,
        cluster_offset: 2.5,
        seed: 20260608,
    };
    let data = generate("card_transactions", "Finance", &cfg).standardized();
    let labels = data.labels_f64();
    println!(
        "screening {} transactions ({} fraudulent, {:.1}%)\n",
        data.n_samples(),
        data.n_anomalies(),
        data.anomaly_pct()
    );

    let candidates =
        [DetectorKind::IForest, DetectorKind::Hbos, DetectorKind::Knn, DetectorKind::Ecod];
    println!(
        "{:10} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "model", "AUC", "AP", "P@50", "AUC+", "AP+", "P@50+"
    );
    for kind in candidates {
        let teacher_scores = kind.build(0).fit_score(&data.x).expect("fit");
        let booster =
            Uadb::new(UadbConfig::with_seed(0)).fit(&data.x, &teacher_scores).expect("boost");
        let boosted = booster.scores();
        println!(
            "{:10} {:>8.4} {:>8.4} {:>8.2} | {:>8.4} {:>8.4} {:>8.2}",
            kind.name(),
            roc_auc(&labels, &teacher_scores),
            average_precision(&labels, &teacher_scores),
            precision_at_k(&labels, &teacher_scores, 50),
            roc_auc(&labels, boosted),
            average_precision(&labels, boosted),
            precision_at_k(&labels, boosted, 50),
        );
    }
    println!("\ncolumns with '+' are the UADB-boosted detector");
}
