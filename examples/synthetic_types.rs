//! The four canonical anomaly types (clustered / global / local /
//! dependency) and how differently the assumption families handle them —
//! a console rendition of the paper's Fig. 5, including the booster's
//! error-correction rate.

use uadb::{Uadb, UadbConfig};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_metrics::{count_errors_top_k, error_correction_rate, roc_auc};

fn main() {
    let models = [DetectorKind::IForest, DetectorKind::Hbos, DetectorKind::Lof, DetectorKind::Knn];
    for ty in AnomalyType::ALL {
        let data = fig5_dataset(ty, 2026).standardized();
        let labels = data.labels_f64();
        let budget = data.n_anomalies();
        println!("\n== {} anomalies ({} points, 10% anomalous)", ty.name(), data.n_samples());
        for kind in models {
            let teacher_scores = kind.build(0).fit_score(&data.x).expect("fit");
            let teacher_errors = count_errors_top_k(&labels, &teacher_scores, budget).errors();

            let booster =
                Uadb::new(UadbConfig::with_seed(0)).fit(&data.x, &teacher_scores).expect("boost");
            let boosted = booster.scores();
            let booster_errors = count_errors_top_k(&labels, boosted, budget).errors();

            println!(
                "  {:8} teacher: AUC {:.3}, {:2} errors | booster: AUC {:.3}, {:2} errors \
                 (correction rate {:.0}%)",
                kind.name(),
                roc_auc(&labels, &teacher_scores),
                teacher_errors,
                roc_auc(&labels, boosted),
                booster_errors,
                100.0 * error_correction_rate(teacher_errors, booster_errors),
            );
        }
    }
}
