//! Model zoo: all 14 source UAD models and their UADB boosters side by
//! side on one dataset — a single-dataset slice of the paper's Table IV,
//! and a live demonstration that no single assumption family wins.

use uadb::experiment::{run_pair, ExperimentConfig};
use uadb::UadbConfig;
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_detectors::DetectorKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "31_satellite".to_string());
    let data = generate_by_name(&name, SuiteScale::Quick, 0)
        .unwrap_or_else(|| panic!("unknown roster dataset {name}"));
    println!(
        "dataset {}: {} samples x {} features, {:.1}% anomalies\n",
        data.name,
        data.n_samples(),
        data.n_features(),
        data.anomaly_pct()
    );
    let cfg = ExperimentConfig { booster: UadbConfig::with_seed(0), n_runs: 1, n_threads: 0 };
    println!(
        "{:10} {:>12} {:>12} {:>12} {:>12}",
        "model", "teacher AUC", "UADB AUC", "teacher AP", "UADB AP"
    );
    let mut best = ("", f64::NEG_INFINITY);
    for kind in DetectorKind::ALL {
        let r = run_pair(kind, &data, &cfg);
        if r.booster_auc > best.1 {
            best = (r.model, r.booster_auc);
        }
        println!(
            "{:10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            r.model, r.teacher_auc, r.booster_auc, r.teacher_ap, r.booster_ap
        );
    }
    println!("\nbest boosted model on {}: {} (AUC {:.4})", data.name, best.0, best.1);
    println!("try another dataset: cargo run --release --example model_zoo -- 12_glass");
}
