//! Network-intrusion scenario: http/smtp-style traffic with a vanishing
//! anomaly rate (the paper's `15_http` has 0.39%, `35_smtp` 0.03%).
//!
//! At such rates a handful of ranking mistakes destroys precision, and
//! neighbour-based detectors (the usual choice for intrusion detection)
//! are exactly the family UADB improves the most (Table IV: LOF +11%
//! AUCROC on average). We reproduce that effect on the simulated `http`
//! and `smtp` roster entries.

use uadb::{Uadb, UadbConfig};
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_detectors::DetectorKind;
use uadb_metrics::{average_precision, roc_auc};

fn main() {
    for name in ["15_http", "35_smtp"] {
        let data =
            generate_by_name(name, SuiteScale::Full, 7).expect("roster dataset").standardized();
        let labels = data.labels_f64();
        println!(
            "\n== {name}: {} flows, {} attacks ({:.2}%)",
            data.n_samples(),
            data.n_anomalies(),
            data.anomaly_pct()
        );
        for kind in [DetectorKind::Lof, DetectorKind::Knn, DetectorKind::Cof] {
            let teacher_scores = kind.build(1).fit_score(&data.x).expect("fit");
            let booster =
                Uadb::new(UadbConfig::with_seed(1)).fit(&data.x, &teacher_scores).expect("boost");
            let boosted = booster.scores();
            println!(
                "  {:4}  teacher AUC {:.4} AP {:.4}  ->  UADB AUC {:.4} AP {:.4}",
                kind.name(),
                roc_auc(&labels, &teacher_scores),
                average_precision(&labels, &teacher_scores),
                roc_auc(&labels, boosted),
                average_precision(&labels, boosted),
            );
            // Where do the true attacks rank in the boosted alert list?
            let mut idx: Vec<usize> = (0..boosted.len()).collect();
            idx.sort_by(|&a, &b| boosted[b].partial_cmp(&boosted[a]).unwrap());
            let positions: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(_, &i)| data.labels[i] == 1)
                .map(|(rank, _)| rank + 1)
                .collect();
            println!("        attack positions in the boosted ranking: {positions:?}");
        }
    }
}
